"""Unit and property tests for the interval index structures.

The headline property: for arbitrary interval sets and probe points, the
interval skip list and the IBS tree return exactly the intervals a brute
force scan returns (DESIGN.md invariant 1).
"""

import pytest
from hypothesis import given, strategies as st

from repro.intervals.interval import (
    Interval, NEG_INF, POS_INF, key_eq, key_le, key_lt)
from repro.intervals.ibstree import IBSTree
from repro.intervals.skiplist import IntervalSkipList


# ----------------------------------------------------------------------
# sentinels and Interval
# ----------------------------------------------------------------------

class TestSentinels:
    def test_neg_inf_below_everything(self):
        assert key_lt(NEG_INF, -10**18)
        assert key_lt(NEG_INF, "a")
        assert not key_lt(-10**18, NEG_INF)
        assert not key_lt(NEG_INF, NEG_INF)

    def test_pos_inf_above_everything(self):
        assert key_lt(10**18, POS_INF)
        assert key_lt("zzz", POS_INF)
        assert not key_lt(POS_INF, 10**18)
        assert not key_lt(POS_INF, POS_INF)

    def test_inf_ordering(self):
        assert key_lt(NEG_INF, POS_INF)
        assert not key_lt(POS_INF, NEG_INF)

    def test_key_eq(self):
        assert key_eq(NEG_INF, NEG_INF)
        assert key_eq(POS_INF, POS_INF)
        assert not key_eq(NEG_INF, POS_INF)
        assert not key_eq(NEG_INF, 0)
        assert key_eq(3, 3)
        assert key_eq(3, 3.0)

    def test_key_le(self):
        assert key_le(3, 3)
        assert key_le(NEG_INF, 3)
        assert not key_le(POS_INF, 3)

    def test_native_comparison_operators(self):
        assert NEG_INF < 5 and not (5 < NEG_INF)
        assert 5 < POS_INF and not (POS_INF < 5)


class TestInterval:
    def test_closed_contains(self):
        iv = Interval(1, 5)
        assert iv.contains_value(1)
        assert iv.contains_value(5)
        assert iv.contains_value(3)
        assert not iv.contains_value(0)
        assert not iv.contains_value(6)

    def test_open_endpoints(self):
        iv = Interval(1, 5, low_closed=False, high_closed=False)
        assert not iv.contains_value(1)
        assert not iv.contains_value(5)
        assert iv.contains_value(2)

    def test_point(self):
        iv = Interval.point(7)
        assert iv.contains_value(7)
        assert not iv.contains_value(6)

    def test_empty_intervals_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 1)
        with pytest.raises(ValueError):
            Interval(5, 5, low_closed=False)

    def test_at_least(self):
        iv = Interval.at_least(10, closed=False)
        assert not iv.contains_value(10)
        assert iv.contains_value(10**12)
        iv2 = Interval.at_least(10)
        assert iv2.contains_value(10)

    def test_at_most(self):
        iv = Interval.at_most(10)
        assert iv.contains_value(10)
        assert iv.contains_value(-10**12)
        assert not iv.contains_value(11)

    def test_everything(self):
        iv = Interval.everything()
        assert iv.contains_value(0)
        assert iv.contains_value("abc")

    def test_contains_interval_closure(self):
        iv = Interval(1, 5, low_closed=False)
        assert not iv.contains_interval(1, 3)
        assert iv.contains_interval(2, 5)
        assert iv.contains_open_interval(1, 5)

    def test_payload_distinguishes(self):
        assert Interval(1, 2, payload="a") != Interval(1, 2, payload="b")

    def test_str(self):
        assert str(Interval(1, 5, low_closed=False)) == "(1, 5]"

    def test_string_intervals(self):
        iv = Interval("apple", "mango")
        assert iv.contains_value("banana")
        assert not iv.contains_value("zebra")


# ----------------------------------------------------------------------
# index structure unit tests (parametrised over both structures)
# ----------------------------------------------------------------------

@pytest.fixture(params=[IntervalSkipList, IBSTree],
                ids=["skiplist", "ibstree"])
def index_cls(request):
    return request.param


class TestIndexBasics:
    def test_empty_stab(self, index_cls):
        assert index_cls().stab(5) == set()

    def test_single_interval(self, index_cls):
        idx = index_cls()
        iv = Interval(10, 20, payload="r1")
        idx.insert(iv)
        assert idx.stab(15) == {iv}
        assert idx.stab(10) == {iv}
        assert idx.stab(20) == {iv}
        assert idx.stab(9) == set()
        assert idx.stab(21) == set()

    def test_open_endpoints_respected(self, index_cls):
        idx = index_cls()
        iv = Interval(10, 20, low_closed=False, high_closed=False)
        idx.insert(iv)
        assert idx.stab(10) == set()
        assert idx.stab(20) == set()
        assert idx.stab(10.5) == {iv}

    def test_point_interval(self, index_cls):
        idx = index_cls()
        iv = Interval.point(42, payload="eq")
        idx.insert(iv)
        assert idx.stab(42) == {iv}
        assert idx.stab(41) == set()
        assert idx.stab(43) == set()

    def test_unbounded_intervals(self, index_cls):
        idx = index_cls()
        above = Interval.at_least(100, closed=False, payload="gt")
        below = Interval.at_most(100, payload="le")
        idx.insert(above)
        idx.insert(below)
        assert idx.stab(50) == {below}
        assert idx.stab(100) == {below}
        assert idx.stab(101) == {above}
        assert idx.stab(10**15) == {above}
        assert idx.stab(-10**15) == {below}

    def test_overlapping_intervals(self, index_cls):
        idx = index_cls()
        a = Interval(0, 10, payload="a")
        b = Interval(5, 15, payload="b")
        c = Interval(8, 9, payload="c")
        for iv in (a, b, c):
            idx.insert(iv)
        assert idx.stab(3) == {a}
        assert idx.stab(7) == {a, b}
        assert idx.stab(8.5) == {a, b, c}
        assert idx.stab(12) == {b}

    def test_duplicate_bounds_distinct_payloads(self, index_cls):
        idx = index_cls()
        a = Interval(1, 5, payload="x")
        b = Interval(1, 5, payload="y")
        idx.insert(a)
        idx.insert(b)
        assert idx.stab(3) == {a, b}
        assert idx.stab_payloads(3) == {"x", "y"}

    def test_duplicate_interval_rejected(self, index_cls):
        idx = index_cls()
        iv = Interval(1, 5)
        idx.insert(iv)
        with pytest.raises(ValueError):
            idx.insert(iv)

    def test_remove(self, index_cls):
        idx = index_cls()
        a = Interval(0, 10, payload="a")
        b = Interval(5, 15, payload="b")
        idx.insert(a)
        idx.insert(b)
        idx.remove(a)
        assert idx.stab(7) == {b}
        assert idx.stab(3) == set()
        assert len(idx) == 1

    def test_remove_absent_raises(self, index_cls):
        with pytest.raises(ValueError):
            index_cls().remove(Interval(1, 2))

    def test_contains_and_iter(self, index_cls):
        idx = index_cls()
        iv = Interval(1, 5)
        idx.insert(iv)
        assert iv in idx
        assert Interval(1, 6) not in idx
        assert list(idx) == [iv]

    def test_stab_none_rejected(self, index_cls):
        with pytest.raises(ValueError):
            index_cls().stab(None)

    def test_shared_endpoints(self, index_cls):
        idx = index_cls()
        a = Interval(0, 5, payload="a")
        b = Interval(5, 10, payload="b")
        idx.insert(a)
        idx.insert(b)
        assert idx.stab(5) == {a, b}
        idx.remove(a)
        assert idx.stab(5) == {b}

    def test_reinsert_after_remove(self, index_cls):
        idx = index_cls()
        iv = Interval(0, 5)
        idx.insert(iv)
        idx.remove(iv)
        idx.insert(iv)
        assert idx.stab(2) == {iv}

    def test_string_keyed_intervals(self, index_cls):
        idx = index_cls()
        iv = Interval("b", "m", payload="strs")
        idx.insert(iv)
        assert idx.stab("d") == {iv}
        assert idx.stab("z") == set()

    def test_many_disjoint(self, index_cls):
        """The paper's benchmark shape: shifted disjoint ranges."""
        idx = index_cls()
        ivs = [Interval(1000 * i, 1000 * i + 500, payload=i)
               for i in range(100)]
        for iv in ivs:
            idx.insert(iv)
        for i in (0, 17, 50, 99):
            assert idx.stab(1000 * i + 250) == {ivs[i]}
            assert idx.stab(1000 * i + 750) == set()

    def test_nested_intervals(self, index_cls):
        idx = index_cls()
        ivs = [Interval(i, 100 - i, payload=i) for i in range(40)]
        for iv in ivs:
            idx.insert(iv)
        assert idx.stab(50) == set(ivs)
        assert idx.stab(5) == set(ivs[:6])
        # Peel off the outermost layers.
        for iv in ivs[:10]:
            idx.remove(iv)
        assert idx.stab(50) == set(ivs[10:])
        assert idx.stab(5) == set()


class TestSkipListInternals:
    def test_invariants_after_churn(self):
        idx = IntervalSkipList(seed=7)
        ivs = [Interval(i % 13, i % 13 + (i % 7) + 1, payload=i)
               for i in range(60)]
        for iv in ivs:
            idx.insert(iv)
            idx.check_invariants()
        for iv in ivs[::2]:
            idx.remove(iv)
            idx.check_invariants()

    def test_node_count_tracks_distinct_endpoints(self):
        idx = IntervalSkipList(seed=1)
        idx.insert(Interval(1, 5))
        idx.insert(Interval(1, 9, payload="p"))
        assert idx.node_count == 3
        idx.remove(Interval(1, 5))
        assert idx.node_count == 2

    def test_marker_count_positive(self):
        idx = IntervalSkipList(seed=1)
        idx.insert(Interval(1, 5))
        assert idx.marker_count() > 0


class TestIBSTreeInternals:
    def test_rebuild_keeps_answers(self):
        idx = IBSTree()
        # Monotone insertion order would degenerate an unbalanced BST;
        # the scapegoat rebuild must keep the height logarithmic.
        ivs = [Interval(i, i + 3, payload=i) for i in range(200)]
        for iv in ivs:
            idx.insert(iv)
        assert idx.height() <= 2.0 * 9 + 8   # ~2*log2(401)+slack
        assert idx.stab(100.5) == {ivs[98], ivs[99], ivs[100]}

    def test_tombstone_compaction(self):
        idx = IBSTree()
        ivs = [Interval(10 * i, 10 * i + 5, payload=i) for i in range(50)]
        for iv in ivs:
            idx.insert(iv)
        for iv in ivs[:40]:
            idx.remove(iv)
        assert idx.node_count < 60
        for iv in ivs[40:]:
            assert idx.stab(iv.low + 1) == {iv}


# ----------------------------------------------------------------------
# property tests vs brute force
# ----------------------------------------------------------------------

def brute_force(intervals, value):
    return {iv for iv in intervals if iv.contains_value(value)}


_bound = st.integers(-25, 25)


@st.composite
def interval_strategy(draw, payload):
    kind = draw(st.integers(0, 3))
    if kind == 0:          # point
        v = draw(_bound)
        return Interval.point(v, payload=payload)
    if kind == 1:          # one-sided above
        return Interval.at_least(draw(_bound), closed=draw(st.booleans()),
                                 payload=payload)
    if kind == 2:          # one-sided below
        return Interval.at_most(draw(_bound), closed=draw(st.booleans()),
                                payload=payload)
    lo = draw(_bound)
    hi = draw(st.integers(lo, 26))
    lo_c = draw(st.booleans())
    hi_c = draw(st.booleans())
    if lo == hi:
        lo_c = hi_c = True
    return Interval(lo, hi, lo_c, hi_c, payload=payload)


@st.composite
def interval_sets(draw):
    n = draw(st.integers(0, 25))
    return [draw(interval_strategy(payload=i)) for i in range(n)]


@given(interval_sets(),
       st.lists(st.one_of(_bound,
                          st.floats(-26, 26, allow_nan=False)),
                min_size=1, max_size=15))
def test_skiplist_matches_brute_force(intervals, probes):
    idx = IntervalSkipList(seed=42)
    for iv in intervals:
        idx.insert(iv)
    idx.check_invariants()
    for p in probes:
        assert idx.stab(p) == brute_force(intervals, p), f"probe {p}"


@given(interval_sets(),
       st.lists(st.one_of(_bound,
                          st.floats(-26, 26, allow_nan=False)),
                min_size=1, max_size=15))
def test_ibstree_matches_brute_force(intervals, probes):
    idx = IBSTree()
    for iv in intervals:
        idx.insert(iv)
    for p in probes:
        assert idx.stab(p) == brute_force(intervals, p), f"probe {p}"


@given(interval_sets(), st.data())
def test_indexes_match_brute_force_under_removal(intervals, data):
    """Insert everything, remove a random subset, compare all probes."""
    isl = IntervalSkipList(seed=3)
    ibs = IBSTree()
    for iv in intervals:
        isl.insert(iv)
        ibs.insert(iv)
    keep = list(intervals)
    if intervals:
        n_remove = data.draw(st.integers(0, len(intervals)))
        for _ in range(n_remove):
            i = data.draw(st.integers(0, len(keep) - 1))
            iv = keep.pop(i)
            isl.remove(iv)
            ibs.remove(iv)
    isl.check_invariants()
    for p in range(-27, 28):
        expected = brute_force(keep, p)
        assert isl.stab(p) == expected
        assert ibs.stab(p) == expected


@given(st.lists(st.tuples(st.integers(0, 40), st.integers(0, 8)),
                max_size=40))
def test_skiplist_interleaved_insert_remove(spans):
    """Interleave inserts and removals, checking invariants throughout."""
    idx = IntervalSkipList(seed=11)
    live: list[Interval] = []
    for n, (lo, width) in enumerate(spans):
        if n % 3 == 2 and live:
            iv = live.pop(n % len(live))
            idx.remove(iv)
        else:
            iv = Interval(lo, lo + width, payload=n)
            idx.insert(iv)
            live.append(iv)
        idx.check_invariants()
        for p in (0, 10, 20, 30, 40):
            assert idx.stab(p) == brute_force(live, p)
