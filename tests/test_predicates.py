"""Unit tests for predicate analysis (conjuncts, intervals, equi-joins)."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.intervals.interval import Interval
from repro.lang.parser import parse_command
from repro.lang.predicates import (
    analyze_selection, build_condition_graph, conjoin, equijoin_of_conjunct,
    intersect, interval_of_conjunct, split_conjuncts)
from repro.lang.semantic import SemanticAnalyzer


@pytest.fixture
def analyzer():
    catalog = Catalog()
    catalog.create_relation("emp", Schema.of(
        name="text", age="int", sal="float", dno="int", jno="int"))
    catalog.create_relation("dept", Schema.of(dno="int", name="text"))
    catalog.create_relation("job", Schema.of(jno="int", title="text"))
    return SemanticAnalyzer(catalog)


def condition(analyzer, text, vars_=("emp", "dept", "job")):
    """Parse a rule condition and return the analyzed expression."""
    cmd = parse_command(f"define rule _tmp if {text} then delete emp")
    analyzer.analyze(cmd)
    analyzer.catalog.drop_rule if False else None
    return cmd.condition


class TestSplitConjoin:
    def test_split_flat(self, analyzer):
        expr = condition(analyzer,
                         'emp.sal > 1 and emp.dno = dept.dno and '
                         'dept.name = "Sales"')
        assert len(split_conjuncts(expr)) == 3

    def test_split_respects_or(self, analyzer):
        expr = condition(analyzer, "emp.sal > 1 or emp.age > 2")
        assert len(split_conjuncts(expr)) == 1

    def test_split_none(self):
        assert split_conjuncts(None) == []

    def test_conjoin_round_trip(self, analyzer):
        expr = condition(analyzer, "emp.sal > 1 and emp.age > 2")
        conjuncts = split_conjuncts(expr)
        rebuilt = conjoin(conjuncts)
        assert split_conjuncts(rebuilt) == conjuncts

    def test_conjoin_empty(self):
        assert conjoin([]) is None


class TestConditionGraph:
    def test_partition(self, analyzer):
        expr = condition(analyzer,
                         'emp.sal > 30000 and emp.dno = dept.dno and '
                         'dept.name = "Sales" and emp.jno = job.jno and '
                         'job.title = "Clerk"')
        graph = build_condition_graph(expr, ["emp", "dept", "job"])
        assert len(graph.selections["emp"]) == 1
        assert len(graph.selections["dept"]) == 1
        assert len(graph.selections["job"]) == 1
        assert len(graph.joins) == 2
        assert graph.constants == []

    def test_constant_conjunct(self, analyzer):
        expr = condition(analyzer, "1 = 1 and emp.sal > 5")
        graph = build_condition_graph(expr, ["emp"])
        assert len(graph.constants) == 1

    def test_selection_predicate_rebuild(self, analyzer):
        expr = condition(analyzer, "emp.sal > 5 and emp.age < 9")
        graph = build_condition_graph(expr, ["emp"])
        pred = graph.selection_predicate("emp")
        assert len(split_conjuncts(pred)) == 2

    def test_unbound_variable_rejected(self, analyzer):
        expr = condition(analyzer, "emp.sal > 5")
        with pytest.raises(Exception):
            build_condition_graph(expr, ["dept"])


class TestIntervalExtraction:
    def get(self, analyzer, text):
        expr = condition(analyzer, text)
        return interval_of_conjunct(expr, "emp")

    def test_less_than(self, analyzer):
        ai = self.get(analyzer, "emp.sal < 100")
        assert ai.attr == "sal"
        assert ai.interval == Interval.at_most(100, closed=False)

    def test_greater_equal(self, analyzer):
        ai = self.get(analyzer, "emp.sal >= 100")
        assert ai.interval == Interval.at_least(100, closed=True)

    def test_equality_point(self, analyzer):
        ai = self.get(analyzer, "emp.dno = 7")
        assert ai.interval == Interval.point(7)

    def test_reversed_comparison(self, analyzer):
        ai = self.get(analyzer, "100 < emp.sal")
        assert ai.interval == Interval.at_least(100, closed=False)

    def test_constant_expression_bound(self, analyzer):
        ai = self.get(analyzer, "emp.sal <= 1.1 * 30000")
        assert ai.interval == Interval.at_most(pytest.approx(33000.0))

    def test_string_bound(self, analyzer):
        ai = self.get(analyzer, 'emp.name = "Bob"')
        assert ai.interval == Interval.point("Bob")

    def test_not_equal_not_indexable(self, analyzer):
        assert self.get(analyzer, "emp.sal != 100") is None

    def test_previous_not_indexable(self, analyzer):
        assert self.get(analyzer, "previous emp.sal < 100") is None

    def test_join_not_indexable(self, analyzer):
        expr = condition(analyzer, "emp.dno = dept.dno")
        assert interval_of_conjunct(expr, "emp") is None

    def test_arithmetic_on_attr_not_indexable(self, analyzer):
        assert self.get(analyzer, "emp.sal * 2 < 100") is None

    def test_wrong_variable(self, analyzer):
        expr = condition(analyzer, 'dept.name = "Sales"')
        assert interval_of_conjunct(expr, "emp") is None


class TestIntersect:
    def test_overlap(self):
        result = intersect(Interval(0, 10), Interval(5, 15))
        assert result == Interval(5, 10)

    def test_closure_combination(self):
        result = intersect(Interval.at_least(5, closed=False),
                           Interval.at_most(9, closed=True))
        assert result == Interval(5, 9, False, True)

    def test_same_bound_closures_and(self):
        result = intersect(Interval(0, 5, True, True),
                           Interval(0, 5, False, True))
        assert result == Interval(0, 5, False, True)

    def test_disjoint(self):
        assert intersect(Interval(0, 1), Interval(2, 3)) is None

    def test_touching_open(self):
        assert intersect(Interval(0, 5, True, False),
                         Interval(5, 9)) is None
        assert intersect(Interval(0, 5), Interval(5, 9)) == \
            Interval.point(5)


class TestAnalyzeSelection:
    def analyze(self, analyzer, text, var="emp"):
        expr = condition(analyzer, text)
        graph = build_condition_graph(
            expr, sorted({"emp", "dept", "job"}))
        return analyze_selection(graph.selections[var], var)

    def test_paper_range_predicate(self, analyzer):
        """C1 < emp.sal <= C2, the paper's benchmark predicate shape."""
        sel = self.analyze(analyzer,
                           "30000 < emp.sal and emp.sal <= 40000")
        assert sel.anchor.attr == "sal"
        assert sel.anchor.interval == Interval(30000, 40000, False, True)
        assert sel.residual is None

    def test_point_preferred_over_range(self, analyzer):
        sel = self.analyze(analyzer, "emp.sal > 10 and emp.dno = 3")
        assert sel.anchor.attr == "dno"
        assert sel.residual is not None

    def test_residual_keeps_other_conjuncts(self, analyzer):
        sel = self.analyze(analyzer,
                           "emp.sal > 10 and emp.name != \"Bob\"")
        assert sel.anchor.attr == "sal"
        assert sel.residual is not None

    def test_no_indexable_conjunct(self, analyzer):
        sel = self.analyze(analyzer, "emp.sal != 10")
        assert sel.anchor is None
        assert sel.residual is not None

    def test_unsatisfiable(self, analyzer):
        sel = self.analyze(analyzer, "emp.sal > 10 and emp.sal < 5")
        assert sel.unsatisfiable

    def test_empty_conjuncts(self):
        sel = analyze_selection([], "emp")
        assert sel.anchor is None
        assert sel.residual is None


class TestEquiJoin:
    def test_extract(self, analyzer):
        expr = condition(analyzer, "emp.dno = dept.dno")
        join = equijoin_of_conjunct(expr)
        assert join.left_var == "emp"
        assert join.right_var == "dept"
        assert join.left_position == 3
        assert join.right_position == 0

    def test_reversed(self, analyzer):
        expr = condition(analyzer, "emp.dno = dept.dno")
        join = equijoin_of_conjunct(expr).reversed()
        assert join.left_var == "dept"

    def test_non_equality_rejected(self, analyzer):
        expr = condition(analyzer, "emp.dno < dept.dno")
        assert equijoin_of_conjunct(expr) is None

    def test_previous_rejected(self, analyzer):
        expr = condition(analyzer, "previous emp.jno = job.jno")
        assert equijoin_of_conjunct(expr) is None

    def test_same_var_rejected(self, analyzer):
        expr = condition(analyzer, "emp.dno = emp.jno")
        assert equijoin_of_conjunct(expr) is None

    def test_const_comparison_rejected(self, analyzer):
        expr = condition(analyzer, "emp.dno = 7")
        assert equijoin_of_conjunct(expr) is None
