"""``explain [analyze]``: plan rendering with observed row counts,
loop counts and per-operator wall time."""

import re

import pytest

from repro import Database
from repro.core.pnode import FrozenMatches, Match, PNode
from repro.core.alpha import MemoryEntry
from repro.errors import SemanticError
from repro.lang import ast_nodes as ast
from repro.lang.expr import Bindings
from repro.lang.parser import parse_command
from repro.planner.plans import (
    AnalyzedPlan, FilterPlan, HashJoin, PnodeScan, SeqScan,
    SortMergeJoin, instrument)
from repro.storage.tuples import TupleId
from tests.helpers import MiniEngine


@pytest.fixture
def db():
    database = Database()
    database.execute_script("""
        create emp (name = text, age = int4, sal = float8, dno = int4)
        create dept (dno = int4, name = text)
        create log (name = text)
    """)
    for i in range(20):
        database.execute(f'append emp(name = "emp{i:02d}", '
                         f'age = {20 + i % 10}, sal = {1000.0 * i}, '
                         f'dno = {1 + i % 4})')
    for dno, name in enumerate(["Toy", "Sales", "Research", "Shipping"],
                               start=1):
        database.execute(f'append dept(dno = {dno}, name = "{name}")')
    return database


class TestParsing:
    def test_explain_parses_to_node(self):
        command = parse_command("explain retrieve (emp.name)")
        assert isinstance(command, ast.Explain)
        assert command.analyze is False
        assert isinstance(command.command, ast.Retrieve)

    def test_explain_analyze_sets_flag(self):
        command = parse_command(
            "explain analyze retrieve (emp.name)")
        assert command.analyze is True

    def test_deparse_round_trip(self):
        text = "explain analyze retrieve (emp.name)"
        command = parse_command(text)
        assert isinstance(parse_command(ast.deparse(command)),
                          ast.Explain)

    def test_non_data_command_rejected(self, db):
        with pytest.raises(SemanticError) as err:
            db.execute("explain create t (a = int4)")
        assert "data command" in str(err.value)


class TestExplainAnalyzeOperators:
    def test_seq_scan_reports_rows_and_time(self, db):
        out = db.execute(
            "explain analyze retrieve (emp.name) where emp.age > 24")
        assert "SeqScan" in out
        match = re.search(r"rows=(\d+) loops=1 time=[\d.]+ms", out)
        assert match and int(match.group(1)) == 10
        assert "Total: 10 row(s)" in out

    def test_index_scan(self, db):
        db.execute("define index empsal on emp (sal) using btree")
        out = db.execute(
            "explain analyze retrieve (emp.name) "
            "where emp.sal > 15000.0")
        assert "IndexScan" in out
        assert "rows=4" in out

    def test_join_reports_rows_in(self, db):
        out = db.execute(
            "explain analyze retrieve (emp.name, dept.name) "
            "where emp.dno = dept.dno")
        assert "Join" in out
        assert "rows_in=" in out
        assert "Total: 20 row(s)" in out

    def test_index_probe_nested_loop(self, db):
        db.execute("define index empdno on emp (dno) using hash")
        out = db.execute(
            'explain analyze retrieve (emp.name) '
            'where emp.dno = dept.dno and dept.name = "Toy"')
        assert "NestedLoopJoin" in out
        assert "IndexProbe" in out
        # the probe ran once per qualifying dept row
        assert "loops=1" in out

    def test_empty_plan(self, db):
        out = db.execute(
            "explain analyze retrieve (emp.name) "
            "where emp.age > 10 and emp.age < 5")
        assert "Empty" in out
        assert "rows=0" in out
        assert "Total: 0 row(s)" in out

    def test_singleton_append_executes(self, db):
        out = db.execute(
            'explain analyze append emp(name = "new", age = 99, '
            'sal = 1.0, dno = 1)')
        assert "Singleton" in out
        assert "Total: 1 tuple(s) affected" in out
        assert len(db.relation_rows("emp")) == 21

    def test_analyze_delete_fires_rules(self, db):
        db.execute("define rule r on delete emp "
                   "then append to log(emp.name)")
        out = db.execute(
            "explain analyze delete emp where emp.age = 29")
        assert "tuple(s) affected" in out
        assert len(db.relation_rows("log")) == 2
        assert db.stats.get("rules.fired") >= 1


class TestNoCachePoisoning:
    def test_statement_cache_untouched_by_analyze(self, db):
        text = "retrieve (emp.name) where emp.age > 24"
        db.execute(f"explain analyze {text}")
        result = db.query(text)
        assert len(result) == 10
        cached = db.statement_cache.lookup(text)
        if cached is not None:
            planned = cached.current_plan()
            assert not isinstance(planned.plan, AnalyzedPlan)

    def test_explain_method_analyze_kwarg(self, db):
        out = db.explain("retrieve (emp.name)", analyze=True)
        assert "rows=20" in out
        plain = db.explain("retrieve (emp.name)")
        assert "rows=" not in plain


class TestInstrumentUnit:
    def _engine(self):
        engine = MiniEngine()
        engine.run("create l (k = int4, v = int4)")
        engine.run("create r (k = int4, w = int4)")
        for i in range(6):
            engine.run(f"append l(k = {i % 3}, v = {i})")
        for i in range(4):
            engine.run(f"append r(k = {i % 2}, w = {i})")
        return engine

    @staticmethod
    def _key(var):
        return ast.AttrRef(var=var, attr="k", position=0)

    def test_hash_join_counts(self):
        engine = self._engine()
        plan = HashJoin(SeqScan("l", "l"), SeqScan("r", "r"),
                        [self._key("l")], [self._key("r")])
        root = instrument(plan)
        out = list(root.rows(engine.context, Bindings()))
        # l keys: 0,1,2 ×2 each; r keys: 0,1 ×2 each → 2*2*2 = 8
        assert len(out) == 8
        assert root.rows_out == 8
        assert root.rows_in() == 10        # 6 build rows + 4 probe rows
        left, right = root.children()
        assert left.rows_out == 6 and right.rows_out == 4
        assert "HashJoin" in root.label()
        assert "rows_in=10" in root.label()

    def test_sort_merge_join_counts(self):
        engine = self._engine()
        plan = SortMergeJoin(SeqScan("l", "l"), SeqScan("r", "r"),
                             self._key("l"), self._key("r"))
        root = instrument(plan)
        out = list(root.rows(engine.context, Bindings()))
        assert len(out) == 8
        assert root.rows_in() == 10
        assert "SortMergeJoin" in root.label()

    def test_filter_plan_counts(self):
        engine = self._engine()
        predicate = ast.BinOp("<", ast.AttrRef(var="l", attr="v",
                                               position=1),
                              ast.Const(3))
        root = instrument(FilterPlan(SeqScan("l", "l"), predicate))
        out = list(root.rows(engine.context, Bindings()))
        assert len(out) == 3
        (child,) = root.children()
        assert child.rows_out == 6
        assert root.rows_in() == 6 and root.rows_out == 3

    def test_pnode_scan(self):
        engine = self._engine()
        pnode = PNode("r1", ["t"])
        for i in range(3):
            entry = MemoryEntry(TupleId("l", i), (i, i))
            pnode.insert(Match.of({"t": entry}), stamp=i)
        holder = FrozenMatches("r1", ["t"], pnode.take_all())
        root = instrument(PnodeScan(holder))
        out = list(root.rows(engine.context, Bindings()))
        assert len(out) == 3
        assert root.rows_out == 3
        assert "PnodeScan" in root.label()

    def test_instrument_leaves_original_untouched(self):
        plan = FilterPlan(SeqScan("l", "l"),
                          ast.BinOp("=", ast.Const(1), ast.Const(1)))
        instrument(plan)
        # the original tree must not contain instrumentation wrappers
        assert isinstance(plan.child, SeqScan)

    def test_loops_counted_per_execution(self):
        engine = self._engine()
        root = instrument(SeqScan("l", "l"))
        for _ in range(3):
            list(root.rows(engine.context, Bindings()))
        assert root.loops == 3
        assert root.rows_out == 18
        assert "loops=3" in root.label()
