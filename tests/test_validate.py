"""Tests for the network self-check, including fault injection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.core.alpha import MemoryEntry
from repro.core.validate import assert_consistent, check_network
from repro.storage.tuples import TupleId

from tests.test_network_equivalence import RULES, apply_ops, _op


def build(policy="auto"):
    db = Database(virtual_policy=policy)
    db.execute("create t (a = int4, k = int4)")
    db.execute("create u (b = int4, k = int4)")
    db.execute("create v (c = int4, k = int4)")
    db.execute("create log (tag = text)")
    return db


class TestCleanStates:
    def test_fresh_database_consistent(self):
        db = build()
        for rule in RULES[:4]:
            db.execute(rule)
        assert check_network(db) == []

    def test_after_workload_consistent(self):
        db = build()
        for rule in RULES:
            db.execute(rule)
        for i in range(30):
            db.execute(f"append t(a = {i % 7}, k = {i})")
            db.execute(f"append u(b = {i % 5}, k = {i})")
        db.execute("replace t (a = 99) where t.k = 3")
        db.execute("delete u where u.k = 4")
        assert_consistent(db)

    def test_suspended_firing_checks_completeness(self):
        db = build()
        db._rules_suspended = True
        db.execute(RULES[1])       # join rule
        db.execute("append t(a = 5, k = 1)")
        db.execute("append u(b = 5, k = 1)")
        assert_consistent(db)
        assert len(db.network.pnode("r_join")) == 1


class TestFaultInjection:
    def test_corrupt_alpha_extra_detected(self):
        db = build(policy="never")
        db.execute(RULES[1])
        db.execute("append t(a = 5, k = 1)")
        memory = db.network.memory("r_join", "t")
        memory.insert(MemoryEntry(TupleId("t", 999), (1, 2)))
        problems = check_network(db)
        assert any(p.kind == "alpha-extra" for p in problems)

    def test_corrupt_alpha_missing_detected(self):
        db = build(policy="never")
        db.execute(RULES[1])
        db.execute("append t(a = 5, k = 1)")
        memory = db.network.memory("r_join", "t")
        tid = next(iter([e.tid for e in memory.entries()]))
        memory.remove(tid)
        problems = check_network(db)
        assert any(p.kind == "alpha-missing" for p in problems)

    def test_corrupt_pnode_detected(self):
        db = build(policy="never")
        db._rules_suspended = True
        db.execute(RULES[1])
        db.execute("append t(a = 5, k = 1)")
        db.execute("append u(b = 5, k = 1)")
        db.network.pnode("r_join").clear()
        problems = check_network(db)
        assert any(p.kind == "pnode-missing" for p in problems)

    def test_phantom_pnode_match_detected(self):
        from repro.core.pnode import Match
        db = build(policy="never")
        db.execute(RULES[1])
        db.network.pnode("r_join").insert(Match.of({
            "t": MemoryEntry(TupleId("t", 77), (1, 1)),
            "u": MemoryEntry(TupleId("u", 88), (1, 1))}), 1)
        problems = check_network(db)
        assert any(p.kind == "pnode-extra" for p in problems)

    def test_assert_consistent_raises_with_report(self):
        db = build(policy="never")
        db.execute(RULES[1])
        memory = db.network.memory("r_join", "t")
        memory.insert(MemoryEntry(TupleId("t", 999), (1, 2)))
        with pytest.raises(AssertionError) as excinfo:
            assert_consistent(db)
        assert "alpha-extra" in str(excinfo.value)

    def test_inconsistency_str(self):
        from repro.core.validate import Inconsistency
        text = str(Inconsistency("r", "alpha-extra", "t: t:9"))
        assert "[r] alpha-extra" in text


@settings(max_examples=20, deadline=None)
@given(st.lists(_op, min_size=1, max_size=12),
       st.sets(st.integers(0, len(RULES) - 1), min_size=1, max_size=4),
       st.sampled_from(["auto", "always", "never"]))
def test_network_consistent_after_random_workloads(ops, rule_indexes,
                                                   policy):
    """The self-check holds after arbitrary workloads on every policy —
    the strongest standing invariant of the whole system."""
    db = build(policy)
    for i in sorted(rule_indexes):
        db.execute(RULES[i])
    apply_ops(db, ops)
    assert_consistent(db)
