"""Integration tests: the paper's rules running end to end.

Every example rule in the paper appears here, across all three network
implementations (A-TREAT, plain TREAT, Rete).
"""

import pytest

from repro import Database, RuleError, RuleLoopError
from repro.errors import CatalogError, ExecutionError


NETWORKS = ["a-treat", "treat", "rete"]


@pytest.fixture(params=NETWORKS)
def db(request):
    """A database with the paper's schema, parameterised over networks."""
    database = Database(network=request.param)
    database.execute_script("""
        create emp (name = text, age = int4, sal = float8,
                    dno = int4, jno = int4)
        create dept (dno = int4, name = text, building = text)
        create job (jno = int4, title = text, paygrade = int4)
        create salaryerror (name = text, oldsal = float8, newsal = float8)
        create demotions (name = text, dno = int4, oldjno = int4,
                          newjno = int4)
        create log (name = text)
        append dept(dno=1, name="Toy", building="A")
        append dept(dno=2, name="Sales", building="B")
        append dept(dno=3, name="Research", building="C")
        append job(jno=1, title="Clerk", paygrade=3)
        append job(jno=2, title="Engineer", paygrade=6)
        append job(jno=3, title="Manager", paygrade=8)
    """)
    return database


def names(db, relation="emp"):
    return sorted(v[0] for v in db.relation_rows(relation))


class TestNoBobs:
    """The paper's on-append event rule (section 2.2.2)."""

    RULE = ('define rule NoBobs on append emp if emp.name = "Bob" '
            'then delete emp')

    def test_direct_append_triggers(self, db):
        db.execute(self.RULE)
        db.execute('append emp(name="Bob", age=1, sal=1, dno=1, jno=1)')
        assert names(db) == []

    def test_other_names_kept(self, db):
        db.execute(self.RULE)
        db.execute('append emp(name="Ann", age=1, sal=1, dno=1, jno=1)')
        assert names(db) == ["Ann"]

    def test_logical_event_block(self, db):
        """The paper's key example: append then rename to Bob inside a
        block is one logical append of a Bob."""
        db.execute(self.RULE)
        db.execute('do '
                   'append emp(name="X", age=27, sal=55000, dno=1, jno=1) '
                   'replace emp (name="Bob") where emp.name = "X" '
                   'end')
        assert names(db) == []

    def test_physical_interpretation_would_miss(self, db):
        """Outside a block the two commands are separate transitions: the
        append (of X) does not match, and the replace is not an append
        event — NoBobs does NOT fire (the paper's motivation for
        preferring the pattern-based NoBobs2)."""
        db.execute(self.RULE)
        db.execute('append emp(name="X", age=27, sal=55000, dno=1, jno=1)')
        db.execute('replace emp (name="Bob") where emp.name = "X"')
        assert names(db) == ["Bob"]

    def test_rename_away_within_block_not_triggered(self, db):
        db.execute(self.RULE)
        db.execute('do '
                   'append emp(name="Bob", age=1, sal=1, dno=1, jno=1) '
                   'replace emp (name="Robert") where emp.name = "Bob" '
                   'end')
        assert names(db) == ["Robert"]

    def test_append_delete_in_block_is_net_nothing(self, db):
        db.execute(self.RULE)
        db.execute('do '
                   'append emp(name="Bob", age=1, sal=1, dno=1, jno=1) '
                   'delete emp where emp.name = "Bob" '
                   'end')
        assert names(db) == []
        assert db.firings == 0


class TestNoBobs2:
    """The pattern-based variant: fires on any Bob however created."""

    RULE = 'define rule NoBobs2 if emp.name = "Bob" then delete emp'

    def test_append_triggers(self, db):
        db.execute(self.RULE)
        db.execute('append emp(name="Bob", age=1, sal=1, dno=1, jno=1)')
        assert names(db) == []

    def test_replace_triggers(self, db):
        db.execute(self.RULE)
        db.execute('append emp(name="X", age=1, sal=1, dno=1, jno=1)')
        db.execute('replace emp (name="Bob") where emp.name = "X"')
        assert names(db) == []

    def test_activation_primes_existing_bobs(self, db):
        """A pattern rule fires on pre-existing matching data when
        activated (P-node priming, paper section 6)."""
        db.execute('append emp(name="Bob", age=1, sal=1, dno=1, jno=1)')
        db.execute(self.RULE)
        assert names(db) == []


class TestRaiseLimit:
    """Transition condition with previous (paper section 2.3)."""

    RULE = ("define rule raiselimit "
            "if emp.sal > 1.1 * previous emp.sal "
            "then append to salaryerror(emp.name, previous emp.sal, "
            "emp.sal)")

    def test_large_raise_logged(self, db):
        db.execute(self.RULE)
        db.execute('append emp(name="Ann", age=1, sal=50000, dno=1, '
                   'jno=1)')
        db.execute('replace emp (sal = 60000) where emp.name = "Ann"')
        assert db.relation_rows("salaryerror") == [
            ("Ann", 50000.0, 60000.0)]

    def test_small_raise_ignored(self, db):
        db.execute(self.RULE)
        db.execute('append emp(name="Ann", age=1, sal=50000, dno=1, '
                   'jno=1)')
        db.execute('replace emp (sal = 54000) where emp.name = "Ann"')
        assert db.relation_rows("salaryerror") == []

    def test_appends_do_not_trigger(self, db):
        db.execute(self.RULE)
        db.execute('append emp(name="Rich", age=1, sal=999999, dno=1, '
                   'jno=1)')
        assert db.relation_rows("salaryerror") == []

    def test_net_raise_across_block(self, db):
        """Two +5% raises in one block are one +10.25% logical raise."""
        db.execute(self.RULE)
        db.execute('append emp(name="Ann", age=1, sal=50000, dno=1, '
                   'jno=1)')
        db.execute('do '
                   'replace emp (sal = emp.sal * 1.05) '
                   'where emp.name = "Ann" '
                   'replace emp (sal = emp.sal * 1.05) '
                   'where emp.name = "Ann" '
                   'end')
        rows = db.relation_rows("salaryerror")
        assert len(rows) == 1
        assert rows[0][1] == 50000.0          # previous = transition start

    def test_raise_then_lower_in_block_no_trigger(self, db):
        db.execute(self.RULE)
        db.execute('append emp(name="Ann", age=1, sal=50000, dno=1, '
                   'jno=1)')
        db.execute('do '
                   'replace emp (sal = 90000) where emp.name = "Ann" '
                   'replace emp (sal = 50500) where emp.name = "Ann" '
                   'end')
        assert db.relation_rows("salaryerror") == []


class TestToyRaiseLimit:
    """Transition + pattern join (paper section 2.3)."""

    RULE = ('define rule toyraiselimit '
            'if emp.sal > 1.1 * previous emp.sal '
            'and emp.dno = dept.dno and dept.name = "Toy" '
            'then append to salaryerror(emp.name, previous emp.sal, '
            'emp.sal)')

    def test_toy_employee_triggers(self, db):
        db.execute(self.RULE)
        db.execute('append emp(name="T", age=1, sal=100, dno=1, jno=1)')
        db.execute('replace emp (sal = 200) where emp.name = "T"')
        assert len(db.relation_rows("salaryerror")) == 1

    def test_sales_employee_does_not(self, db):
        db.execute(self.RULE)
        db.execute('append emp(name="S", age=1, sal=100, dno=2, jno=1)')
        db.execute('replace emp (sal = 200) where emp.name = "S"')
        assert db.relation_rows("salaryerror") == []


class TestFindDemotions:
    """Event + transition + pattern with a double self-join on job."""

    RULE = ("define rule finddemotions on replace emp(jno) "
            "if newjob.jno = emp.jno "
            "and oldjob.jno = previous emp.jno "
            "and newjob.paygrade < oldjob.paygrade "
            "from oldjob in job, newjob in job "
            "then append to demotions (name=emp.name, dno=emp.dno, "
            "oldjno=oldjob.jno, newjno=newjob.jno)")

    def test_demotion_logged(self, db):
        db.execute(self.RULE)
        db.execute('append emp(name="Ann", age=1, sal=1, dno=1, jno=3)')
        db.execute('replace emp (jno = 1) where emp.name = "Ann"')
        assert db.relation_rows("demotions") == [("Ann", 1, 3, 1)]

    def test_promotion_not_logged(self, db):
        db.execute(self.RULE)
        db.execute('append emp(name="Ann", age=1, sal=1, dno=1, jno=1)')
        db.execute('replace emp (jno = 3) where emp.name = "Ann"')
        assert db.relation_rows("demotions") == []

    def test_unrelated_attribute_update_not_logged(self, db):
        """The on replace emp(jno) gate: a salary update emits a replace
        event whose target list does not include jno."""
        db.execute(self.RULE)
        db.execute('append emp(name="Ann", age=1, sal=1, dno=1, jno=3)')
        db.execute('replace emp (sal = 2) where emp.name = "Ann"')
        assert db.relation_rows("demotions") == []


class TestSalesClerkRule2:
    """Compound action with replace' via the P-node (paper Figure 6/7)."""

    RULE = ('define rule SalesClerkRule2 '
            'if emp.sal > 30000 and emp.jno = job.jno '
            'and job.title = "Clerk" '
            'then do '
            'append to log(emp.name) '
            'replace emp (sal = 30000) where emp.dno = dept.dno '
            'and dept.name = "Sales" '
            'replace emp (sal = 25000) where emp.dno = dept.dno '
            'and dept.name != "Sales" '
            'end')

    def test_sales_clerk_capped_at_30000(self, db):
        db.execute(self.RULE)
        db.execute('append emp(name="SC", age=1, sal=50000, dno=2, '
                   'jno=1)')
        assert db.relation_rows("log") == [("SC",)]
        sal = db.query('retrieve (emp.sal) where emp.name = "SC"')
        assert sal.rows == [(30000.0,)]

    def test_toy_clerk_capped_at_25000(self, db):
        db.execute(self.RULE)
        db.execute('append emp(name="TC", age=1, sal=50000, dno=1, '
                   'jno=1)')
        sal = db.query('retrieve (emp.sal) where emp.name = "TC"')
        assert sal.rows == [(25000.0,)]

    def test_engineer_untouched(self, db):
        db.execute(self.RULE)
        db.execute('append emp(name="E", age=1, sal=50000, dno=2, jno=2)')
        sal = db.query('retrieve (emp.sal) where emp.name = "E"')
        assert sal.rows == [(50000.0,)]
        assert db.relation_rows("log") == []

    def test_set_oriented_firing(self, db):
        """Multiple pre-existing matches are processed in one firing when
        the rule is activated."""
        for i in range(3):
            db.execute(f'append emp(name="C{i}", age=1, sal=40000, '
                       f'dno=2, jno=1)')
        before = db.firings
        db.execute(self.RULE)
        assert sorted(db.relation_rows("log")) == [
            ("C0",), ("C1",), ("C2",)]
        assert db.firings == before + 1


class TestOnDeleteRules:
    def test_delete_event_binds_deleted_tuple(self, db):
        db.execute("define rule ondel on delete emp "
                   "then append to log(emp.name)")
        db.execute('append emp(name="Doomed", age=1, sal=1, dno=1, '
                   'jno=1)')
        db.execute('delete emp where emp.name = "Doomed"')
        assert db.relation_rows("log") == [("Doomed",)]

    def test_on_delete_with_condition(self, db):
        db.execute("define rule ondel on delete emp if emp.sal > 100 "
                   "then append to log(emp.name)")
        db.execute('append emp(name="Rich", age=1, sal=200, dno=1, '
                   'jno=1)')
        db.execute('append emp(name="Poor", age=1, sal=50, dno=1, jno=1)')
        db.execute("delete emp")
        assert db.relation_rows("log") == [("Rich",)]

    def test_append_then_delete_in_block_no_event(self, db):
        db.execute("define rule ondel on delete emp "
                   "then append to log(emp.name)")
        db.execute('do '
                   'append emp(name="Ghost", age=1, sal=1, dno=1, jno=1) '
                   'delete emp where emp.name = "Ghost" '
                   'end')
        assert db.relation_rows("log") == []


class TestNewCondition:
    def test_new_fires_on_append_and_replace(self, db):
        db.execute("define rule watch if new(emp) "
                   "then append to log(emp.name)")
        db.execute('append emp(name="A", age=1, sal=1, dno=1, jno=1)')
        db.execute('replace emp (name="B") where emp.name = "A"')
        assert sorted(db.relation_rows("log")) == [("A",), ("B",)]

    def test_new_does_not_fire_on_activation(self, db):
        db.execute('append emp(name="Old", age=1, sal=1, dno=1, jno=1)')
        db.execute("define rule watch if new(emp) "
                   "then append to log(emp.name)")
        assert db.relation_rows("log") == []


class TestPrioritiesAndConflictResolution:
    def test_priority_order(self, db):
        db.execute("create trace (tag = text)")
        db.execute('define rule lowp priority 1 if new(emp) '
                   'then append to trace(tag = "low")')
        db.execute('define rule highp priority 9 if new(emp) '
                   'then append to trace(tag = "high")')
        db.execute('append emp(name="A", age=1, sal=1, dno=1, jno=1)')
        assert [r[0] for r in db.relation_rows("trace")] == [
            "high", "low"]

    def test_halt_stops_cycle(self, db):
        db.execute("create trace (tag = text)")
        db.execute('define rule stopper priority 9 if new(emp) '
                   'then halt')
        db.execute('define rule lowp priority 1 if new(emp) '
                   'then append to trace(tag = "low")')
        db.execute('append emp(name="A", age=1, sal=1, dno=1, jno=1)')
        assert db.relation_rows("trace") == []

    def test_halt_does_not_persist_across_transitions(self, db):
        db.execute("create trace (tag = text)")
        db.execute('define rule stopper priority 9 on append emp '
                   'if emp.name = "stop" then halt')
        db.execute('define rule lowp priority 1 if new(emp) '
                   'then append to trace(tag = "low")')
        db.execute('append emp(name="stop", age=1, sal=1, dno=1, jno=1)')
        db.execute('append emp(name="go", age=1, sal=1, dno=1, jno=1)')
        assert [r[0] for r in db.relation_rows("trace")] == ["low"]


class TestRuleCascades:
    def test_rule_triggers_rule(self, db):
        """salaryerror appends trigger a follow-up rule (the paper
        suggests exactly this composition in section 2.3)."""
        db.execute(TestRaiseLimit.RULE)
        db.execute("define rule escalate on append salaryerror "
                   "then append to log(salaryerror.name)")
        db.execute('append emp(name="Ann", age=1, sal=100, dno=1, jno=1)')
        db.execute('replace emp (sal = 200) where emp.name = "Ann"')
        assert db.relation_rows("log") == [("Ann",)]

    def test_runaway_rules_raise(self, db):
        small = Database(max_firings=10)
        small.execute("create ping (n = int4)")
        small.execute("define rule loop on append ping "
                      "then append to ping(n = ping.n + 1)")
        with pytest.raises(RuleLoopError):
            small.execute("append ping(n = 0)")

    def test_anti_join_cascade_settles(self, db):
        """A delete-triggering chain terminates once data is consistent."""
        db.execute('define rule nohighpaid if emp.sal > 100000 '
                   'then replace emp (sal = 100000) '
                   'where emp.sal > 100000')
        db.execute('append emp(name="CEO", age=1, sal=900000, dno=1, '
                   'jno=1)')
        sal = db.query('retrieve (emp.sal) where emp.name = "CEO"')
        assert sal.rows == [(100000.0,)]


class TestRuleLifecycle:
    RULE = 'define rule r1 if emp.name = "Bob" then delete emp'

    def test_deactivate_stops_matching(self, db):
        db.execute(self.RULE)
        db.execute("deactivate rule r1")
        db.execute('append emp(name="Bob", age=1, sal=1, dno=1, jno=1)')
        assert names(db) == ["Bob"]

    def test_reactivate_primes(self, db):
        db.execute(self.RULE)
        db.execute("deactivate rule r1")
        db.execute('append emp(name="Bob", age=1, sal=1, dno=1, jno=1)')
        db.execute("activate rule r1")
        assert names(db) == []

    def test_remove_rule(self, db):
        db.execute(self.RULE)
        db.execute("remove rule r1")
        db.execute('append emp(name="Bob", age=1, sal=1, dno=1, jno=1)')
        assert names(db) == ["Bob"]
        assert not db.catalog.has_rule("r1")

    def test_double_activate_rejected(self, db):
        db.execute(self.RULE)
        with pytest.raises(RuleError):
            db.execute("activate rule r1")

    def test_deactivate_inactive_rejected(self, db):
        db.execute(self.RULE)
        db.execute("deactivate rule r1")
        with pytest.raises(RuleError):
            db.execute("deactivate rule r1")

    def test_rulesets(self, db):
        db.execute('define rule r1 in watchers if emp.name = "Bob" '
                   'then delete emp')
        assert "r1" in db.catalog.ruleset("watchers").rule_names
        db.execute('define rule r2 if emp.name = "Alice" '
                   'then delete emp')
        assert "r2" in db.catalog.ruleset("default_rules").rule_names

    def test_destroy_relation_with_rule_rejected(self, db):
        db.execute(self.RULE)
        with pytest.raises(CatalogError):
            db.execute("destroy emp")

    def test_top_level_halt_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.execute("halt")


class TestSelfJoinRules:
    def test_pattern_self_join(self, db):
        """Two employees in the same department with the same salary."""
        db.execute("create pairs (a = text, b = text)")
        db.execute("define rule twins "
                   "if a.dno = b.dno and a.sal = b.sal and a.name != "
                   "b.name from a in emp, b in emp "
                   "then append to pairs(a = a.name, b = b.name)")
        db.execute('append emp(name="X", age=1, sal=100, dno=1, jno=1)')
        assert db.relation_rows("pairs") == []
        db.execute('append emp(name="Y", age=1, sal=100, dno=1, jno=1)')
        got = sorted(db.relation_rows("pairs"))
        assert got == [("X", "Y"), ("Y", "X")]

    def test_self_join_exact_multiplicity(self, db):
        """A tuple joining to itself must do so exactly the right number
        of times (the ProcessedMemories guarantee, paper section 4.2)."""
        db.execute("create pairs (a = text, b = text)")
        db.execute("define rule samedept "
                   "if a.dno = b.dno from a in emp, b in emp "
                   "then append to pairs(a = a.name, b = b.name)")
        db.execute('append emp(name="X", age=1, sal=100, dno=1, jno=1)')
        # X joins with itself exactly once
        assert db.relation_rows("pairs") == [("X", "X")]
