"""Last coverage gaps: aggregate properties, halt-mid-action, misc."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 4),
                          st.integers(-100, 100)),
                min_size=0, max_size=30))
def test_grouped_aggregates_match_python(rows):
    """Grouped count/sum/min/max/avg equal a direct computation."""
    db = Database()
    db.execute("create t (g = int4, v = int4)")
    for g, v in rows:
        db.execute(f"append t(g = {g}, v = {v})")
    result = db.query("retrieve (t.g, n = count(t.all), s = sum(t.v), "
                      "lo = min(t.v), hi = max(t.v), a = avg(t.v))")
    groups: dict[int, list[int]] = {}
    for g, v in rows:
        groups.setdefault(g, []).append(v)
    assert len(result) == len(groups)
    for g, n, s, lo, hi, a in result.rows:
        values = groups[g]
        assert n == len(values)
        assert s == sum(values)
        assert lo == min(values)
        assert hi == max(values)
        assert a == pytest.approx(sum(values) / len(values))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(-50, 50), min_size=0, max_size=25),
       st.booleans())
def test_sort_matches_python_sorted(values, descending):
    db = Database()
    db.execute("create t (v = int4)")
    for v in values:
        db.execute(f"append t(v = {v})")
    direction = " desc" if descending else ""
    result = db.query(f"retrieve (t.v) sort by t.v{direction}")
    assert result.column("v") == sorted(values, reverse=descending)


class TestHaltSemantics:
    def test_halt_skips_remaining_action_commands(self):
        db = Database()
        db.execute("create t (a = int4)")
        db.execute("create log (a = int4)")
        db.execute("define rule r on append t then do "
                   "append to log(a = 1) "
                   "halt "
                   "append to log(a = 2) "
                   "end")
        db.execute("append t(a = 0)")
        assert db.relation_rows("log") == [(1,)]

    def test_halt_prevents_lower_priority_rules(self):
        db = Database()
        db.execute("create t (a = int4)")
        db.execute("create log (a = int4)")
        db.execute("define rule stopper priority 5 on append t then halt")
        db.execute("define rule after priority 1 on append t "
                   "then append to log(a = 1)")
        db.execute("append t(a = 0)")
        assert db.relation_rows("log") == []

    def test_higher_priority_rule_beats_halt(self):
        db = Database()
        db.execute("create t (a = int4)")
        db.execute("create log (a = int4)")
        db.execute("define rule first priority 9 on append t "
                   "then append to log(a = 1)")
        db.execute("define rule stopper priority 5 on append t then halt")
        db.execute("append t(a = 0)")
        assert db.relation_rows("log") == [(1,)]


class TestReplaceEventNetTargetList:
    def test_rename_then_rename_back_not_a_name_event(self):
        db = Database()
        db.execute("create t (name = text, v = int4)")
        db.execute("create log (name = text)")
        db.execute("define rule watch on replace t(name) "
                   "then append to log(t.name)")
        db.execute('append t(name = "a", v = 1)')
        db.execute('do '
                   'replace t (name = "b") '
                   'replace t (name = "a", v = 2) '
                   'end')
        # net change vs transition start: only v — no name event
        assert db.relation_rows("log") == []

    def test_net_includes_both_changed_attrs(self):
        db = Database()
        db.execute("create t (name = text, v = int4)")
        db.execute("create vlog (name = text)")
        db.execute("create nlog (name = text)")
        db.execute("define rule von on replace t(v) "
                   "then append to vlog(t.name)")
        db.execute("define rule non on replace t(name) "
                   "then append to nlog(t.name)")
        db.execute('append t(name = "a", v = 1)')
        db.execute('do replace t (name = "b") replace t (v = 2) end')
        assert db.relation_rows("vlog") == [("b",)]
        assert db.relation_rows("nlog") == [("b",)]


class TestMultipleDatabasesIsolated:
    def test_instances_do_not_share_state(self):
        a = Database()
        b = Database()
        a.execute("create t (x = int4)")
        with pytest.raises(Exception):
            b.query("retrieve (t.x)")
        b.execute("create t (x = int4)")
        a.execute("append t(x = 1)")
        assert b.relation_rows("t") == []
