"""The serving layer, in process: sessions, the snapshot gate, the
serialized write queue, per-session transaction gating — plus the
thread-safety regression sweep this layer forced (statement-cache
locking, Database close idempotence, the wal_info pending accessor).
"""

import threading
import time

import pytest

from repro import (
    Database, DatabaseClosedError, ServiceError, SessionError,
    TransactionError)
from repro.prepared import Prepared, StatementCache
from repro.serve import RuleService, SnapshotGate


def _service():
    svc = RuleService()
    svc.db.execute("create emp (id = int4, name = text, sal = float8)")
    svc.db.execute("create audit (tag = text, who = text)")
    svc.db.execute(
        'define rule watch on replace emp if emp.sal > 100.0 '
        'then append to audit(tag = "high", who = emp.name)')
    svc.db.execute('append emp(id = 1, name = "a", sal = 50.0)')
    svc.db.execute('append emp(id = 2, name = "b", sal = 60.0)')
    return svc


# ----------------------------------------------------------------------
# sessions and the read/write split
# ----------------------------------------------------------------------

def test_sessions_share_one_database():
    with _service() as svc:
        s1, s2 = svc.open_session(), svc.open_session()
        s1.execute('append emp(id = 3, name = "c", sal = 70.0)')
        rows = s2.query("retrieve (e.name) from e in emp").rows
        assert sorted(rows) == [("a",), ("b",), ("c",)]
        assert s1.id != s2.id
        assert svc.status()["sessions"] == 2


def test_reads_take_the_read_path_writes_the_queue():
    with _service() as svc:
        session = svc.open_session()
        session.query("retrieve (e.name) from e in emp")
        session.execute('append emp(id = 3, name = "c", sal = 1.0)')
        assert session.reads == 1
        assert session.writes == 1
        assert svc.db.stats.get("serve.reads") == 1
        assert svc.db.stats.get("serve.writes") == 1


def test_mutation_via_execute_still_fires_rules():
    with _service() as svc:
        session = svc.open_session()
        session.execute(
            "replace e (sal = 200.0) from e in emp where e.id = 1")
        assert session.query(
            "retrieve (a.who) from a in audit").rows == [("a",)]


def test_prepared_statements_are_per_session():
    with _service() as svc:
        s1, s2 = svc.open_session(), svc.open_session()
        sig = s1.prepare("by_id",
                         "retrieve (e.name) from e in emp "
                         "where e.id = $id")
        assert sig == ("id",)
        assert s1.execute_prepared(
            "by_id", {"id": 2}).rows == [("b",)]
        with pytest.raises(SessionError, match="by_id"):
            s2.execute_prepared("by_id", {"id": 2})


def test_closed_session_rejects_work():
    with _service() as svc:
        session = svc.open_session()
        svc.close_session(session)
        assert session.closed
        with pytest.raises(SessionError):
            session.query("retrieve (e.name) from e in emp")
        # closing again is a no-op
        svc.close_session(session)
        assert svc.status()["sessions"] == 0


# ----------------------------------------------------------------------
# transaction gating
# ----------------------------------------------------------------------

def test_second_begin_is_denied_cleanly():
    with _service() as svc:
        s1, s2 = svc.open_session(), svc.open_session()
        s1.begin()
        with pytest.raises(TransactionError,
                           match=r"already open by session \d+"):
            s2.begin()
        # the denial corrupted nothing: s1's txn proceeds normally
        s1.execute('append emp(id = 3, name = "c", sal = 1.0)')
        s1.commit()
        assert svc.db.stats.get("serve.txn_denied") == 1
        assert len(s2.query(
            "retrieve (e.name) from e in emp").rows) == 3


def test_own_begin_twice_is_denied_too():
    with _service() as svc:
        session = svc.open_session()
        session.begin()
        with pytest.raises(TransactionError,
                           match="already open by this session"):
            session.begin()
        session.abort()
        assert not session.in_transaction


def test_other_sessions_writes_defer_until_commit():
    with _service() as svc:
        s1, s2 = svc.open_session(), svc.open_session()
        s1.begin()
        s1.execute('append emp(id = 3, name = "c", sal = 1.0)')

        done = threading.Event()

        def deferred_write():
            s2.execute('append emp(id = 4, name = "d", sal = 2.0)')
            done.set()

        thread = threading.Thread(target=deferred_write, daemon=True)
        thread.start()
        # s2's write waits while the transaction is open
        assert not done.wait(0.3)
        s1.commit()
        assert done.wait(5.0)
        thread.join(timeout=5.0)
        assert len(s1.query(
            "retrieve (e.name) from e in emp").rows) == 4
        # the deferral was observed by the service
        assert svc.db.stats.get("serve.deferred_ops") >= 1


def test_abort_rolls_back_and_releases_the_gate():
    with _service() as svc:
        s1, s2 = svc.open_session(), svc.open_session()
        s1.begin()
        s1.execute('append emp(id = 3, name = "c", sal = 1.0)')
        s1.abort()
        assert len(s2.query(
            "retrieve (e.name) from e in emp").rows) == 2
        # gate is free again: another session can begin now
        s2.begin()
        s2.abort()


def test_closing_a_session_aborts_its_open_transaction():
    with _service() as svc:
        s1, s2 = svc.open_session(), svc.open_session()
        s1.begin()
        s1.execute('append emp(id = 3, name = "c", sal = 1.0)')
        svc.close_session(s1)
        assert len(s2.query(
            "retrieve (e.name) from e in emp").rows) == 2
        s2.begin()          # the gate was released
        s2.abort()


def test_owner_reads_its_own_uncommitted_state():
    with _service() as svc:
        session = svc.open_session()
        session.begin()
        session.execute('append emp(id = 3, name = "c", sal = 1.0)')
        # routed through the write queue, sees the open transaction
        assert len(session.query(
            "retrieve (e.name) from e in emp").rows) == 3
        session.commit()


def test_serial_history_records_committed_order():
    with _service() as svc:
        session = svc.open_session()
        session.execute('append emp(id = 3, name = "c", sal = 1.0)')
        session.begin()
        session.execute("delete e from e in emp where e.id = 3")
        session.commit()
        history = svc.serial_history()
        assert [entry[0] for entry in history] == \
            ["execute", "begin", "execute", "commit"]


def test_shutdown_fails_pending_work_and_is_idempotent():
    with _service() as svc:
        session = svc.open_session()
        svc.shutdown()
        svc.shutdown()      # idempotent
        with pytest.raises(ServiceError):
            svc.execute(session, 'append emp(id = 9, name = "z", '
                                 'sal = 1.0)')
        assert svc.status()["stopped"]


# ----------------------------------------------------------------------
# the snapshot gate itself
# ----------------------------------------------------------------------

def test_gate_readers_share_writers_exclude():
    gate = SnapshotGate()
    gate.acquire_read()
    gate.acquire_read()         # readers share
    acquired = threading.Event()

    def writer():
        with gate.write():
            acquired.set()

    thread = threading.Thread(target=writer, daemon=True)
    thread.start()
    assert not acquired.wait(0.2)
    gate.release_read()
    assert not acquired.wait(0.2)   # one reader still holds it
    gate.release_read()
    assert acquired.wait(5.0)
    thread.join(timeout=5.0)


def test_gate_is_writer_preferring():
    gate = SnapshotGate()
    gate.acquire_read()
    started = threading.Event()
    writer_done = threading.Event()
    late_read_done = threading.Event()

    def writer():
        started.set()
        with gate.write():
            writer_done.set()

    def late_reader():
        with gate.read():
            late_read_done.set()

    w = threading.Thread(target=writer, daemon=True)
    w.start()
    started.wait(5.0)
    time.sleep(0.1)             # let the writer queue up
    r = threading.Thread(target=late_reader, daemon=True)
    r.start()
    # a reader arriving behind a waiting writer must wait too
    assert not late_read_done.wait(0.2)
    gate.release_read()
    assert writer_done.wait(5.0)
    assert late_read_done.wait(5.0)
    w.join(timeout=5.0)
    r.join(timeout=5.0)


# ----------------------------------------------------------------------
# regression: StatementCache under concurrent lookup/store
# ----------------------------------------------------------------------

def test_statement_cache_survives_concurrent_hammering():
    """Reader threads hammering lookup() while others store() must not
    corrupt the OrderedDict recency list (pre-fix: KeyError out of
    move_to_end, or RuntimeError from mutation during eviction)."""
    db = Database()
    db.execute("create t (a = int4)")
    cache = StatementCache(capacity=8)
    texts = [f"retrieve (x.a) from x in t where x.a > {i}"
             for i in range(32)]
    prepared = {text: Prepared(db, text) for text in texts}
    stop = time.monotonic() + 1.0
    failures = []

    def worker(seed):
        i = seed
        try:
            while time.monotonic() < stop:
                i += 1
                text = texts[(i * 7 + seed) % len(texts)]
                if (i + seed) % 3 == 0:
                    cache.store(text, prepared[text])
                else:
                    entry = cache.lookup(text)
                    assert entry is None or entry.text == text
        except Exception as exc:   # pragma: no cover - the regression
            failures.append(f"{type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=worker, args=(n,), daemon=True)
               for n in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not failures
    assert len(cache) <= 8
    db.close()


# ----------------------------------------------------------------------
# regression: Database.close() idempotence
# ----------------------------------------------------------------------

def test_double_close_raises_database_closed_error(tmp_path):
    db = Database(durable_path=tmp_path / "d", fsync="never")
    db.execute("create t (a = int4)")
    db.close()
    assert db.closed
    with pytest.raises(DatabaseClosedError):
        db.close()


def test_execute_after_close_raises_clearly():
    db = Database()
    db.execute("create t (a = int4)")
    db.close()
    for call in (
            lambda: db.execute("append t(a = 1)"),
            lambda: db.query("retrieve (x.a) from x in t"),
            lambda: db.execute_readonly("retrieve (x.a) from x in t"),
            lambda: db.prepare("retrieve (x.a) from x in t"),
            lambda: db.begin(),
            lambda: db.checkpoint()):
        with pytest.raises(DatabaseClosedError, match="closed"):
            call()


def test_introspection_still_works_after_close():
    # the equivalence suites snapshot P-nodes after close(); keep that
    db = Database()
    db.execute("create t (a = int4)")
    db.execute("append t(a = 1)")
    db.close()
    assert db.relation_rows("t") == [(1,)]


# ----------------------------------------------------------------------
# regression: wal_info uses the public pending_records property
# ----------------------------------------------------------------------

def test_wal_info_pending_matches_public_property(tmp_path):
    db = Database(durable_path=tmp_path / "d", fsync="never")
    db.execute("create t (a = int4)")
    durability = db._durability
    assert db.wal_info()["pending"] == 0
    assert durability.pending_records == 0
    # mid-transition the journal buffer is non-empty; the accessor
    # reports it without wal_info() reaching into _buffer
    durability.journal_insert("t", (1,))
    assert durability.pending_records == 1
    assert db.wal_info()["pending"] == 1
    durability.flush_boundary(sync=False)
    assert durability.pending_records == 0
    assert db.wal_info()["pending"] == 0
    db.execute("append t(a = 1)")   # matches the journaled record
    db.close()
