"""Tests for the tuple-probe debugger and large-scale interval indexes."""

import random

import pytest

from repro import Database
from repro.core.introspect import explain_probe, probe_tuple
from repro.intervals.ibstree import IBSTree
from repro.intervals.interval import Interval
from repro.intervals.skiplist import IntervalSkipList


@pytest.fixture
def db():
    database = Database()
    database.execute_script("""
        create emp (name = text, sal = float8, dno = int4)
        create log (name = text)
    """)
    database.execute('define rule rich if emp.sal > 50000 '
                     'then append to log(emp.name)')
    database.execute('define rule toy if emp.dno = 1 and emp.sal > 100 '
                     'then append to log(emp.name)')
    database.execute('define rule tr '
                     'if emp.sal > 2 * previous emp.sal '
                     'then append to log(emp.name)')
    return database


class TestProbeTuple:
    def test_matching_rules_listed(self, db):
        hits = probe_tuple(db.manager, "emp", ("x", 60000.0, 1))
        names = {h[0] for h in hits}
        assert names == {"rich", "toy"}

    def test_non_matching(self, db):
        assert probe_tuple(db.manager, "emp", ("x", 10.0, 2)) == []

    def test_transition_rule_with_pair(self, db):
        hits = probe_tuple(db.manager, "emp", ("x", 300.0, 2),
                           old_values=("x", 100.0, 2))
        assert ("tr", "emp", "simple-trans-α") in hits

    def test_transition_rule_without_pair_excluded(self, db):
        hits = probe_tuple(db.manager, "emp", ("x", 300.0, 2))
        assert all(h[0] != "tr" for h in hits)

    def test_no_state_mutated(self, db):
        before = db.network.tokens_processed
        probe_tuple(db.manager, "emp", ("x", 60000.0, 1))
        assert db.network.tokens_processed == before
        assert db.relation_rows("log") == []

    def test_explain_probe_text(self, db):
        text = explain_probe(db.manager, "emp", ("x", 60000.0, 1))
        assert "rich/emp" in text and "toy/emp" in text
        text2 = explain_probe(db.manager, "emp", ("x", 1.0, 2))
        assert "no rule selection predicate" in text2

    def test_type_checked(self, db):
        with pytest.raises(Exception):
            probe_tuple(db.manager, "emp", ("x", "not-a-number", 1))


class TestIntervalIndexesAtScale:
    """Directed large-N checks (the property tests use small N)."""

    def build_intervals(self, n, rng):
        out = []
        for i in range(n):
            lo = rng.uniform(0, 10000)
            width = rng.choice([rng.uniform(0, 5), rng.uniform(0, 500)])
            out.append(Interval(lo, lo + width, payload=i))
        return out

    @pytest.mark.parametrize("cls", [IntervalSkipList, IBSTree],
                             ids=["skiplist", "ibstree"])
    def test_thousands_of_intervals(self, cls):
        rng = random.Random(7)
        intervals = self.build_intervals(2500, rng)
        index = cls() if cls is IBSTree else cls(seed=7)
        for iv in intervals:
            index.insert(iv)
        for _ in range(80):
            probe = rng.uniform(-10, 10010)
            expected = {iv for iv in intervals
                        if iv.contains_value(probe)}
            assert index.stab(probe) == expected

    @pytest.mark.parametrize("cls", [IntervalSkipList, IBSTree],
                             ids=["skiplist", "ibstree"])
    def test_heavy_removal_churn(self, cls):
        rng = random.Random(13)
        intervals = self.build_intervals(1500, rng)
        index = cls() if cls is IBSTree else cls(seed=13)
        for iv in intervals:
            index.insert(iv)
        live = list(intervals)
        rng.shuffle(live)
        while len(live) > 100:
            index.remove(live.pop())
            if len(live) % 250 == 0:
                probe = rng.uniform(0, 10000)
                expected = {iv for iv in live
                            if iv.contains_value(probe)}
                assert index.stab(probe) == expected
        assert len(index) == 100

    def test_skiplist_stays_logarithmic_in_markers(self):
        """Marker counts must stay near O(n log n), not O(n²)."""
        import math
        index = IntervalSkipList(seed=3)
        n = 2000
        for i in range(n):
            index.insert(Interval(i, i + 50, payload=i))
        assert index.marker_count() < 40 * n * math.log2(n)
