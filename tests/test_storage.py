"""Unit and property tests for heap relations and secondary indexes."""

import pytest
from hypothesis import given, strategies as st

from repro.catalog.schema import Schema
from repro.errors import StorageError
from repro.storage.heap import HeapRelation
from repro.storage.indexes import BTreeIndex, HashIndex, make_index
from repro.storage.tuples import StoredTuple, TupleId


def make_emp():
    return HeapRelation("emp", Schema.of(name="text", age="int",
                                         salary="float", dno="int"))


class TestTupleId:
    def test_equality(self):
        assert TupleId("emp", 3) == TupleId("emp", 3)
        assert TupleId("emp", 3) != TupleId("emp", 4)
        assert TupleId("emp", 3) != TupleId("dept", 3)

    def test_hashable(self):
        assert len({TupleId("emp", 1), TupleId("emp", 1)}) == 1

    def test_str(self):
        assert str(TupleId("emp", 7)) == "emp:7"


class TestStoredTuple:
    def test_indexing(self):
        stored = StoredTuple(TupleId("emp", 0), ("Ann", 30))
        assert stored[0] == "Ann"
        assert stored[1] == 30
        assert len(stored) == 2


class TestHeapBasics:
    def test_insert_assigns_fresh_tids(self):
        emp = make_emp()
        t1 = emp.insert(("Ann", 30, 100.0, 1))
        t2 = emp.insert(("Bob", 40, 200.0, 2))
        assert t1 != t2
        assert len(emp) == 2

    def test_get(self):
        emp = make_emp()
        tid = emp.insert(("Ann", 30, 100.0, 1))
        assert emp.get(tid) == ("Ann", 30, 100.0, 1)

    def test_delete_returns_values(self):
        emp = make_emp()
        tid = emp.insert(("Ann", 30, 100.0, 1))
        assert emp.delete(tid) == ("Ann", 30, 100.0, 1)
        assert len(emp) == 0
        assert not emp.contains(tid)

    def test_delete_dangling_raises(self):
        emp = make_emp()
        tid = emp.insert(("Ann", 30, 100.0, 1))
        emp.delete(tid)
        with pytest.raises(StorageError):
            emp.delete(tid)

    def test_replace_preserves_tid(self):
        emp = make_emp()
        tid = emp.insert(("Ann", 30, 100.0, 1))
        old = emp.replace(tid, ("Ann", 31, 120.0, 1))
        assert old == ("Ann", 30, 100.0, 1)
        assert emp.get(tid) == ("Ann", 31, 120.0, 1)

    def test_slots_not_reused(self):
        emp = make_emp()
        t1 = emp.insert(("Ann", 30, 100.0, 1))
        emp.delete(t1)
        t2 = emp.insert(("Bob", 40, 200.0, 2))
        assert t2.slot > t1.slot

    def test_restore_after_delete(self):
        emp = make_emp()
        tid = emp.insert(("Ann", 30, 100.0, 1))
        values = emp.delete(tid)
        emp.restore(tid, values)
        assert emp.get(tid) == values

    def test_restore_over_live_slot_raises(self):
        emp = make_emp()
        tid = emp.insert(("Ann", 30, 100.0, 1))
        with pytest.raises(StorageError):
            emp.restore(tid, ("X", 1, 1.0, 1))

    def test_scan_in_slot_order(self):
        emp = make_emp()
        names = ["C", "A", "B"]
        for i, name in enumerate(names):
            emp.insert((name, i, 0.0, 0))
        assert [s.values[0] for s in emp.scan()] == names

    def test_scan_where(self):
        emp = make_emp()
        for i in range(10):
            emp.insert((f"p{i}", i, float(i), 0))
        old = list(emp.scan_where(lambda v: v[1] >= 5))
        assert len(old) == 5

    def test_fetch_skips_dead(self):
        emp = make_emp()
        t1 = emp.insert(("Ann", 30, 100.0, 1))
        t2 = emp.insert(("Bob", 40, 200.0, 2))
        emp.delete(t1)
        fetched = list(emp.fetch([t1, t2]))
        assert [s.tid for s in fetched] == [t2]

    def test_wrong_relation_tid(self):
        emp = make_emp()
        with pytest.raises(StorageError):
            emp.get(TupleId("dept", 0))

    def test_type_checking_on_insert(self):
        emp = make_emp()
        with pytest.raises(Exception):
            emp.insert(("Ann", "thirty", 100.0, 1))


class TestHashIndex:
    def test_search(self):
        idx = HashIndex("i", "emp", "dno", 3)
        idx.insert(1, TupleId("emp", 0))
        idx.insert(1, TupleId("emp", 1))
        idx.insert(2, TupleId("emp", 2))
        assert set(idx.search(1)) == {TupleId("emp", 0), TupleId("emp", 1)}
        assert set(idx.search(3)) == set()

    def test_none_not_indexed(self):
        idx = HashIndex("i", "emp", "dno", 3)
        idx.insert(None, TupleId("emp", 0))
        assert len(idx) == 0
        assert set(idx.search(None)) == set()

    def test_delete(self):
        idx = HashIndex("i", "emp", "dno", 3)
        idx.insert(1, TupleId("emp", 0))
        idx.delete(1, TupleId("emp", 0))
        assert set(idx.search(1)) == set()

    def test_delete_absent_raises(self):
        idx = HashIndex("i", "emp", "dno", 3)
        with pytest.raises(StorageError):
            idx.delete(1, TupleId("emp", 0))

    def test_distinct_keys(self):
        idx = HashIndex("i", "emp", "dno", 3)
        for i in range(10):
            idx.insert(i % 3, TupleId("emp", i))
        assert idx.distinct_keys() == 3


class TestBTreeIndex:
    def build(self, keys):
        idx = BTreeIndex("i", "emp", "age", 1)
        for i, key in enumerate(keys):
            idx.insert(key, TupleId("emp", i))
        return idx

    def test_equality_search(self):
        idx = self.build([5, 3, 5, 8])
        assert len(list(idx.search(5))) == 2
        assert len(list(idx.search(4))) == 0

    def test_range_inclusive(self):
        idx = self.build(list(range(10)))
        tids = list(idx.range_search(3, 6))
        assert len(tids) == 4

    def test_range_exclusive(self):
        idx = self.build(list(range(10)))
        tids = list(idx.range_search(3, 6, low_inclusive=False,
                                     high_inclusive=False))
        assert len(tids) == 2

    def test_range_unbounded(self):
        idx = self.build(list(range(10)))
        assert len(list(idx.range_search(None, 4))) == 5
        assert len(list(idx.range_search(5, None))) == 5
        assert len(list(idx.range_search(None, None))) == 10

    def test_min_max(self):
        idx = self.build([7, 2, 9])
        assert idx.min_key() == 2
        assert idx.max_key() == 9
        assert BTreeIndex("e", "emp", "age", 1).min_key() is None

    def test_delete(self):
        idx = self.build([5, 5])
        idx.delete(5, TupleId("emp", 0))
        assert list(idx.search(5)) == [TupleId("emp", 1)]

    def test_incomparable_key_raises(self):
        idx = self.build([5])
        with pytest.raises(StorageError):
            idx.insert("five", TupleId("emp", 9))

    def test_make_index_factory(self):
        assert make_index("hash", "i", "r", "a", 0).kind == "hash"
        assert make_index("BTREE", "i", "r", "a", 0).kind == "btree"
        with pytest.raises(StorageError):
            make_index("gin", "i", "r", "a", 0)


class TestHeapWithIndexes:
    def make_indexed(self):
        emp = make_emp()
        emp.attach_index(BTreeIndex("emp_age", "emp", "age", 1))
        emp.attach_index(HashIndex("emp_dno", "emp", "dno", 3))
        return emp

    def test_indexes_maintained_on_insert(self):
        emp = self.make_indexed()
        tid = emp.insert(("Ann", 30, 100.0, 1))
        assert list(emp.index_on("age").search(30)) == [tid]
        assert list(emp.index_on("dno").search(1)) == [tid]

    def test_indexes_maintained_on_delete(self):
        emp = self.make_indexed()
        tid = emp.insert(("Ann", 30, 100.0, 1))
        emp.delete(tid)
        assert list(emp.index_on("age").search(30)) == []

    def test_indexes_maintained_on_replace(self):
        emp = self.make_indexed()
        tid = emp.insert(("Ann", 30, 100.0, 1))
        emp.replace(tid, ("Ann", 31, 100.0, 2))
        assert list(emp.index_on("age").search(30)) == []
        assert list(emp.index_on("age").search(31)) == [tid]
        assert list(emp.index_on("dno").search(2)) == [tid]

    def test_attach_bulk_loads(self):
        emp = make_emp()
        tids = [emp.insert((f"p{i}", i, 0.0, 0)) for i in range(5)]
        emp.attach_index(BTreeIndex("emp_age", "emp", "age", 1))
        assert list(emp.index_on("age").search(3)) == [tids[3]]

    def test_index_on_kind_filter(self):
        emp = self.make_indexed()
        assert emp.index_on("age", "btree") is not None
        assert emp.index_on("age", "hash") is None
        assert emp.index_on("nope") is None

    def test_detach(self):
        emp = self.make_indexed()
        emp.detach_index("emp_age")
        assert emp.index_on("age") is None
        with pytest.raises(StorageError):
            emp.detach_index("emp_age")

    def test_duplicate_index_name(self):
        emp = self.make_indexed()
        with pytest.raises(StorageError):
            emp.attach_index(BTreeIndex("emp_age", "emp", "age", 1))

    def test_wrong_relation_index(self):
        emp = make_emp()
        with pytest.raises(StorageError):
            emp.attach_index(BTreeIndex("x", "dept", "age", 1))


# ----------------------------------------------------------------------
# property tests: heap + indexes stay consistent under random operations
# ----------------------------------------------------------------------

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 50)),
        st.tuples(st.just("delete"), st.integers(0, 200)),
        st.tuples(st.just("replace"), st.integers(0, 200),
                  st.integers(0, 50)),
    ),
    max_size=60,
)


@given(_ops)
def test_heap_index_consistency(ops):
    """Random inserts/deletes/replaces keep index contents equal to a
    from-scratch rebuild from the heap."""
    rel = HeapRelation("t", Schema.of(k="int"))
    rel.attach_index(BTreeIndex("bt", "t", "k", 0))
    rel.attach_index(HashIndex("h", "t", "k", 0))
    live: list[TupleId] = []
    for op in ops:
        if op[0] == "insert":
            live.append(rel.insert((op[1],)))
        elif op[0] == "delete" and live:
            rel.delete(live.pop(op[1] % len(live)))
        elif op[0] == "replace" and live:
            rel.replace(live[op[1] % len(live)], (op[2],))
    expected: dict[int, set[TupleId]] = {}
    for stored in rel.scan():
        expected.setdefault(stored.values[0], set()).add(stored.tid)
    for key, tids in expected.items():
        assert set(rel.index_on("k", "btree").search(key)) == tids
        assert set(rel.index_on("k", "hash").search(key)) == tids
    total = sum(len(t) for t in expected.values())
    assert len(rel.index_on("k", "btree")) == total
    assert len(rel.index_on("k", "hash")) == total
