"""The socket front end: protocol framing, the TCP server, the
blocking client, the load generator, and the shell's ``\\serve``
meta-command."""

import io
import json

import pytest

from repro.cli import Shell
from repro.serve import RemoteError, RuleServer, ServiceClient
from repro.serve import loadgen, protocol


@pytest.fixture()
def server():
    rule_server = RuleServer(db=loadgen.demo_database(rows=20))
    rule_server.start()
    yield rule_server
    rule_server.stop(close_db=True)


def _client(server):
    host, port = server.address
    return ServiceClient(host, port, timeout=30.0)


# ----------------------------------------------------------------------
# protocol framing
# ----------------------------------------------------------------------

def test_protocol_round_trip():
    message = {"id": 1, "op": "execute", "text": "retrieve …"}
    encoded = protocol.encode_message(message)
    assert encoded.endswith(b"\n")
    assert protocol.read_message(io.BytesIO(encoded)) == message


def test_protocol_eof_blank_and_oversize():
    assert protocol.read_message(io.BytesIO(b"")) is None
    assert protocol.read_message(io.BytesIO(b"\n")) == {}
    with pytest.raises(ValueError):
        protocol.read_message(io.BytesIO(b"{nope\n"))
    with pytest.raises(ValueError, match="JSON objects"):
        protocol.read_message(io.BytesIO(b"[1, 2]\n"))
    with pytest.raises(ValueError, match="exceeds"):
        long_line = b"x" * (protocol.MAX_LINE + 1) + b"\n"
        protocol.read_message(io.BytesIO(long_line))


def test_encode_result_shapes():
    from repro.executor.executor import DmlResult
    assert protocol.encode_result(None) == {"type": "ok"}
    assert protocol.encode_result("plan text") == \
        {"type": "text", "text": "plan text"}
    dml = protocol.encode_result(DmlResult(3))
    assert dml["type"] == "dml" and dml["count"] == 3


# ----------------------------------------------------------------------
# server + client
# ----------------------------------------------------------------------

def test_client_round_trip(server):
    with _client(server) as client:
        assert client.ping()
        assert client.session_id() >= 1
        rows = client.rows("retrieve (e.name) from e in emp "
                           "where e.id = 1")
        assert rows == [["emp0001"]]
        result = client.execute(
            "replace e (sal = 260.0) from e in emp where e.id = 1")
        assert result == {"type": "dml", "count": 1}
        assert client.rows("retrieve (a.tag) from a in audit "
                           "where a.who = \"emp0001\"") == [["band0"]]


def test_client_prepared_statements(server):
    with _client(server) as client:
        signature = client.prepare("probe", loadgen.READ_STATEMENT)
        assert signature == ["id"]
        out = client.exec_prepared("probe", {"id": 2})
        assert out["type"] == "rows"
        assert out["rows"] == [["emp0002", 2250.0]]
        with pytest.raises(RemoteError) as excinfo:
            client.exec_prepared("nope")
        assert excinfo.value.kind == "SessionError"


def test_remote_errors_carry_the_engine_class(server):
    with _client(server) as client:
        with pytest.raises(RemoteError) as excinfo:
            client.execute("retrieve (x.a) from x in missing")
        assert excinfo.value.kind == "CatalogError"
        # the connection survives an engine error
        assert client.ping()


def test_transaction_denial_over_the_wire(server):
    with _client(server) as one, _client(server) as two:
        one.begin()
        with pytest.raises(RemoteError) as excinfo:
            two.begin()
        assert excinfo.value.kind == "TransactionError"
        one.execute('append emp(id = 100, name = "x", sal = 1.0)')
        one.commit()
        assert len(two.rows("retrieve (e.name) from e in emp "
                            "where e.id = 100")) == 1


def test_dropped_connection_aborts_its_transaction(server):
    client = _client(server)
    client.begin()
    client.execute('append emp(id = 200, name = "y", sal = 1.0)')
    client.close()          # server aborts the session's transaction
    with _client(server) as other:
        # the gate is free and the append rolled back
        other.begin()
        other.abort()
        assert other.rows("retrieve (e.name) from e in emp "
                          "where e.id = 200") == []


def test_unknown_op_and_missing_field(server):
    with _client(server) as client:
        with pytest.raises(RemoteError, match="unknown op"):
            client._call("bogus")
        with pytest.raises(RemoteError, match="missing"):
            client._call("execute")


def test_status_endpoint(server):
    with _client(server) as client:
        status = client.status()
        assert status["sessions"] == 1
        assert status["transaction_owner"] is None
        assert not status["stopped"]


def test_sessions_close_with_connections(server):
    with _client(server) as client:
        client.ping()
    # allow the handler thread to finish tearing the session down
    import time
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if server.service.session_count() == 0:
            break
        time.sleep(0.01)
    assert server.service.session_count() == 0


# ----------------------------------------------------------------------
# load generator
# ----------------------------------------------------------------------

def test_run_load_mixed_workload(server):
    host, port = server.address
    summary = loadgen.run_load(host, port, clients=2, duration=0.4,
                               rows=20, write_ratio=0.25)
    assert summary["errors"] == []
    assert summary["ops"] > 0
    assert summary["reads"] > 0 and summary["writes"] > 0
    assert summary["ops"] == summary["reads"] + summary["writes"]
    assert len(summary["per_client"]) == 2


def test_loadgen_main_standalone(tmp_path, capsys):
    out_path = tmp_path / "summary.json"
    code = loadgen.main([
        "--standalone", "--clients", "2", "--duration", "0.4",
        "--rows", "20", "--write-ratio", "0.1",
        "--json", str(out_path)])
    assert code == 0
    summary = json.loads(out_path.read_text())
    assert summary["ops"] > 0 and summary["errors"] == []
    assert "evaluations/sec" in capsys.readouterr().out


def test_loadgen_main_requires_a_target():
    with pytest.raises(SystemExit):
        loadgen.main(["--clients", "1"])


# ----------------------------------------------------------------------
# the shell's \serve meta-command
# ----------------------------------------------------------------------

def _shell():
    out = io.StringIO()
    shell = Shell(out=out)
    shell.feed("create emp (id = int4, name = text, sal = float8);")
    shell.feed('append emp(id = 1, name = "a", sal = 10.0);')
    return shell, out


def _served_port(out):
    line = [l for l in out.getvalue().splitlines()
            if l.startswith("serving the session database")][0]
    return int(line.split(":")[-1].split()[0])


def test_cli_serve_round_trip():
    shell, out = _shell()
    shell.feed("\\serve")
    try:
        port = _served_port(out)
        with ServiceClient("127.0.0.1", port) as client:
            assert client.rows("retrieve (e.name) from e in emp") \
                == [["a"]]
            client.execute('append emp(id = 2, name = "b", '
                           'sal = 20.0)')
        # the server mutated the shell's own database
        assert len(shell.db.relation_rows("emp")) == 2
    finally:
        shell.feed("\\serve stop")
    text = out.getvalue()
    assert "rule server stopped" in text
    # the shell still owns an open database after stopping
    shell.feed('append emp(id = 3, name = "c", sal = 30.0);')
    assert len(shell.db.relation_rows("emp")) == 3


def test_cli_serve_status_and_double_start():
    shell, out = _shell()
    shell.feed("\\serve")
    try:
        shell.feed("\\serve status")
        shell.feed("\\serve")
    finally:
        shell.feed("\\serve stop")
    text = out.getvalue()
    assert "sessions" in text
    assert "already serving" in text


def test_cli_serve_errors():
    shell, out = _shell()
    shell.feed("\\serve stop")
    shell.feed("\\serve status")
    shell.feed("\\serve host:notaport")
    text = out.getvalue()
    assert text.count("no rule server is running") == 2
    assert "usage: \\serve" in text
