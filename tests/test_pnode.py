"""Tests for P-nodes and matches."""

from repro.core.alpha import MemoryEntry
from repro.core.pnode import FrozenMatches, Match, PNode
from repro.lang.expr import Bindings
from repro.storage.tuples import TupleId


def entry(relation, slot, *values, old=None):
    return MemoryEntry(TupleId(relation, slot), tuple(values), old)


def match(**parts):
    return Match.of(parts)


class TestMatch:
    def test_entry_lookup(self):
        m = match(emp=entry("emp", 0, "Ann"), dept=entry("dept", 1, "Toy"))
        assert m.entry("emp").values == ("Ann",)
        assert m.variables() == ("dept", "emp")

    def test_involves_tid(self):
        m = match(emp=entry("emp", 0, "Ann"))
        assert m.involves_tid(TupleId("emp", 0))
        assert not m.involves_tid(TupleId("emp", 1))

    def test_extend_binds_everything(self):
        m = match(emp=entry("emp", 0, "Ann", old=("Zoe",)),
                  dept=entry("dept", 1, "Toy"))
        bound = m.extend(Bindings())
        assert bound.current["emp"] == ("Ann",)
        assert bound.previous["emp"] == ("Zoe",)
        assert bound.tids["dept"] == TupleId("dept", 1)
        assert "dept" not in bound.previous

    def test_extend_does_not_mutate_outer(self):
        outer = Bindings()
        match(emp=entry("emp", 0, "A")).extend(outer)
        assert outer.current == {}

    def test_equality(self):
        a = match(emp=entry("emp", 0, "Ann"))
        b = match(emp=entry("emp", 0, "Ann"))
        assert a == b


class TestPNode:
    def make(self):
        return PNode("r", ["dept", "emp"])

    def test_insert_dedup(self):
        pnode = self.make()
        m = match(emp=entry("emp", 0, "A"), dept=entry("dept", 0, "D"))
        assert pnode.insert(m, stamp=1)
        assert not pnode.insert(m, stamp=2)
        assert len(pnode) == 1

    def test_insert_same_tids_new_values_updates(self):
        pnode = self.make()
        pnode.insert(match(emp=entry("emp", 0, "A"),
                           dept=entry("dept", 0, "D")), 1)
        assert pnode.insert(match(emp=entry("emp", 0, "B"),
                                  dept=entry("dept", 0, "D")), 2)
        assert len(pnode) == 1
        assert pnode.matches()[0].entry("emp").values == ("B",)

    def test_delete_by_tid(self):
        pnode = self.make()
        pnode.insert(match(emp=entry("emp", 0, "A"),
                           dept=entry("dept", 0, "D")), 1)
        pnode.insert(match(emp=entry("emp", 1, "B"),
                           dept=entry("dept", 0, "D")), 2)
        assert pnode.delete_by_tid(TupleId("emp", 0)) == 1
        assert len(pnode) == 1
        assert pnode.delete_by_tid(TupleId("dept", 0)) == 1
        assert len(pnode) == 0

    def test_recency_stamp(self):
        pnode = self.make()
        pnode.insert(match(emp=entry("emp", 0, "A"),
                           dept=entry("dept", 0, "D")), 5)
        pnode.insert(match(emp=entry("emp", 1, "B"),
                           dept=entry("dept", 0, "D")), 9)
        assert pnode.last_insert_stamp == 9

    def test_take_all_consumes(self):
        pnode = self.make()
        pnode.insert(match(emp=entry("emp", 0, "A"),
                           dept=entry("dept", 0, "D")), 1)
        taken = pnode.take_all()
        assert len(taken) == 1
        assert len(pnode) == 0
        assert not pnode

    def test_bool(self):
        pnode = self.make()
        assert not pnode
        pnode.insert(match(emp=entry("emp", 0, "A"),
                           dept=entry("dept", 0, "D")), 1)
        assert pnode


class TestFrozenMatches:
    def test_interface(self):
        matches = [match(emp=entry("emp", 0, "A"))]
        frozen = FrozenMatches("r", ["emp"], matches)
        assert len(frozen) == 1
        assert frozen.matches() == matches
        assert frozen.variables == ["emp"]
