"""Multiway-vs-pairwise equivalence property (the algorithm contract).

For any generated statement sequence, the leapfrog multiway join step
must be *indistinguishable* from the pairwise probe chain — not just
set-equal but identical in every ordering-observable artifact:

* P-node contents and stored α-memory contents;
* the agenda's firing order — the exact ``(rule, match-count)``
  sequence of the firing log (both algorithms advance the insertion
  stamp once per complete combination, so agenda recency must agree);
* final relation contents (rule actions included).

The rule pool is weighted toward shapes the planner actually routes to
the triejoin — triangles, cyclic self-joins, 4-variable cycles — plus a
non-equi residue and a transition-gated cycle to exercise the residual
schedule and Δ-set paths.  Runs across TREAT and Rete, serial and
sharded (``parallel_workers``), and with durability on, so the multiway
step composes with every other propagation layer.
"""

import pathlib
import tempfile

from hypothesis import given, settings, strategies as st

from repro import Database

from tests.test_network_equivalence import pnode_snapshot
from tests.test_parallel_property import _alpha_snapshot, _firing_sequence

MULTIWAY_RULES = [
    # the canonical triangle
    ("define rule m_tri if t.a = u.b and u.k = v.c and v.k = t.k "
     'then append to log(tag = "tri")'),
    # cyclic self-join over one relation
    ("define rule m_self if x.a = y.a and y.k = z.k and z.a = x.a "
     "from x in t, y in t, z in t "
     'then append to log(tag = "self")'),
    # 4-variable cycle with a cross link
    ("define rule m_four "
     "if t.a = u.b and u.k = v.c and v.k = w.k and w.a = t.a "
     "from t in t, u in u, v in v, w in t "
     'then append to log(tag = "four")'),
    # triangle with a non-equi residue (residual schedule)
    ("define rule m_resid "
     "if t.a = u.b and u.k = v.c and v.k = t.k and t.k < u.k + 10 "
     'then append to log(tag = "resid")'),
    # transition-gated triangle (Δ-set / previous bindings)
    ("define rule m_trans "
     "if t.a > previous t.a and t.a = u.b and u.k = v.c "
     "and v.k = t.k "
     'then append to log(tag = "trans")'),
]

#: (network, virtual_policy, parallel_workers, durable)
CONFIGS = [
    ("a-treat", "auto", 0, False),
    ("a-treat", "never", 2, False),
    ("a-treat", "always", 0, True),
    ("rete", "never", 0, False),
    ("rete", "never", 2, True),
]

_op = st.one_of(
    st.tuples(st.just("insert"), st.sampled_from("tuv"),
              st.integers(0, 6)),
    st.tuples(st.just("delete"), st.sampled_from("tuv"),
              st.integers(0, 20)),
    st.tuples(st.just("modify"), st.sampled_from("tuv"),
              st.integers(0, 20), st.integers(0, 6)),
)


def _build(join_mode, config, rules, durable_path):
    network, policy, workers, durable = config
    db = Database(network=network, virtual_policy=policy,
                  batch_tokens=True, join_mode=join_mode,
                  durable_path=durable_path if durable else None,
                  fsync="never")
    if workers:
        db.set_parallel_workers(workers, min_batch=1)
    db.execute("create t (a = int4, k = int4)")
    db.execute("create u (b = int4, k = int4)")
    db.execute("create v (c = int4, k = int4)")
    db.execute("create log (tag = text)")
    for rule in rules:
        db.execute(rule)
    return db


def _apply(db, ops):
    counters = {"t": 0, "u": 0, "v": 0}
    for op in ops:
        if op[0] == "insert":
            _, rel, value = op
            col = {"t": "a", "u": "b", "v": "c"}[rel]
            counters[rel] += 1
            db.execute(f"append {rel}({col} = {value}, "
                       f"k = {counters[rel] % 8})")
        elif op[0] == "delete":
            _, rel, k = op
            db.execute(f"delete {rel} where {rel}.k = {k % 8}")
        else:
            _, rel, k, value = op
            col = {"t": "a", "u": "b", "v": "c"}[rel]
            db.execute(f"replace {rel} ({col} = {value}) "
                       f"where {rel}.k = {k % 8}")


@settings(max_examples=15, deadline=None)
@given(st.lists(_op, min_size=1, max_size=10),
       st.sets(st.integers(0, len(MULTIWAY_RULES) - 1),
               min_size=1, max_size=3),
       st.sampled_from(CONFIGS))
def test_multiway_equivalent_to_pairwise(ops, rule_indexes, config):
    rules = [MULTIWAY_RULES[i] for i in sorted(rule_indexes)]
    with tempfile.TemporaryDirectory() as root:
        root = pathlib.Path(root)
        snapshots = {}
        for mode in ("pairwise", "multiway"):
            db = _build(mode, config, rules, root / mode)
            _apply(db, ops)
            db.close()
            snapshots[mode] = (
                pnode_snapshot(db), _alpha_snapshot(db),
                _firing_sequence(db),
                {rel: sorted(db.relation_rows(rel))
                 for rel in ("t", "u", "v", "log")})
        label = f"config={config}"
        pw, mw = snapshots["pairwise"], snapshots["multiway"]
        assert mw[0] == pw[0], f"{label}: P-nodes diverged"
        assert mw[1] == pw[1], f"{label}: alpha memories diverged"
        assert mw[2] == pw[2], f"{label}: firing order diverged"
        assert mw[3] == pw[3], f"{label}: relations diverged"
