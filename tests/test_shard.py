"""Unit tests for the sharded-propagation layer (repro.core.shard).

The partitioner, the stable shard hash, worker resolution, the pool
lifecycle (including runtime resizing through the database and the
``\\workers`` shell command), the process-backend residual offload, and
the consolidated token-routing counters.
"""

import io
import types

import pytest

from repro import Database
from repro.cli import Shell
from repro.core.shard import (
    DEFAULT_MIN_BATCH, ShardPool, merge_results, partition,
    resolve_workers, shard_hash)
from repro.errors import ArielError
from repro.observe import EngineStats


def _token(relation, values):
    return types.SimpleNamespace(relation=relation, values=values)


def _index(**anchor_positions):
    return types.SimpleNamespace(anchor_positions=anchor_positions)


# ----------------------------------------------------------------------
# shard_hash / partition
# ----------------------------------------------------------------------


class TestShardHash:
    def test_stable_for_strings(self):
        # crc32-based: the same value must hash identically on every
        # run (str hashes are salted per process, so a baked-in
        # constant also guards against an accidental hash() fallback)
        assert shard_hash("emp", ("alice",)) == \
            shard_hash("emp", ("alice",))
        assert shard_hash("emp", ("alice",)) == 402229784

    def test_none_and_numbers(self):
        assert shard_hash("t", (None,)) == shard_hash("t", (None,))
        assert shard_hash("t", (1,)) == shard_hash("t", (1.0,))
        assert shard_hash("t", ()) != shard_hash("u", ())

    def test_distinct_keys_spread(self):
        buckets = {shard_hash("emp", (float(i),)) % 4
                   for i in range(64)}
        assert len(buckets) == 4


class TestPartition:
    def test_covers_every_token_once(self):
        tokens = [_token("emp", (i, float(i % 5))) for i in range(20)]
        shards = partition(tokens, _index(emp=(1,)), 4)
        seen = sorted(idx for shard in shards
                      for idx, _ in shard)
        assert seen == list(range(20))

    def test_co_shards_equal_anchor_keys(self):
        # tokens sharing an anchor value must land in the same shard —
        # that keeps per-shard probe/residual caches as effective as
        # the serial batch caches
        tokens = [_token("emp", (i, 7.0)) for i in range(10)]
        shards = partition(tokens, _index(emp=(1,)), 4)
        assert sum(1 for shard in shards if shard) == 1

    def test_preserves_relative_order_within_shard(self):
        tokens = [_token("emp", (i, float(i % 3))) for i in range(12)]
        for shard in partition(tokens, _index(emp=(1,)), 3):
            indexes = [idx for idx, _ in shard]
            assert indexes == sorted(indexes)

    def test_unanchored_relation_uses_empty_key(self):
        tokens = [_token("log", (i,)) for i in range(6)]
        shards = partition(tokens, _index(), 4)
        assert sum(1 for shard in shards if shard) == 1


class TestMergeResults:
    def test_sums_counters_and_orders_decisions(self):
        results = [
            ([(2, ["c2"], ["op2"])], {"x": 1}, 3),
            ([(0, ["c0"], ["op0"]), (1, ["c1"], ["op1"])],
             {"x": 2, "y": 5}, 4),
        ]
        decisions, counters, memo_hits = merge_results(results)
        assert sorted(decisions) == [0, 1, 2]
        assert decisions[1] == (["c1"], ["op1"])
        assert counters == {"x": 3, "y": 5}
        assert memo_hits == 7

    def test_none_counters_ignored(self):
        decisions, counters, hits = merge_results(
            [([(0, [], [])], None, 0)])
        assert decisions == {0: ([], [])} and counters == {}


# ----------------------------------------------------------------------
# resolve_workers / ShardPool
# ----------------------------------------------------------------------


class TestResolveWorkers:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers(2) == 2
        assert resolve_workers(0) == 0

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers(None) == 0

    def test_invalid_values_raise(self, monkeypatch):
        with pytest.raises(ArielError):
            resolve_workers(-1)
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ArielError):
            resolve_workers(None)


class TestShardPool:
    def test_accepts_honours_min_batch(self):
        pool = ShardPool(2, min_batch=10)
        assert not pool.accepts(9)
        assert pool.accepts(10)
        assert ShardPool(2).min_batch == DEFAULT_MIN_BATCH
        pool.close()

    def test_rejects_bad_configuration(self):
        with pytest.raises(ArielError):
            ShardPool(2, backend="gpu")
        with pytest.raises(ArielError):
            ShardPool(0)

    def test_map_runs_every_live_shard(self):
        pool = ShardPool(2, min_batch=1)
        out = pool.map(sum, [[1, 2], [], [3, 4], [5]])
        assert sorted(out) == [3, 5, 7]
        pool.close()
        assert pool._executor is None

    def test_info(self):
        pool = ShardPool(3, backend="thread", min_batch=5)
        assert pool.info() == {"workers": 3, "backend": "thread",
                               "min_batch": 5}
        pool.close()


# ----------------------------------------------------------------------
# database wiring
# ----------------------------------------------------------------------


ROWS = [("e%03d" % i, 50.0 + (i % 9), 18 + (i % 10))
        for i in range(120)]


def _built(parallel_workers=0, **kwargs):
    # explicit workers=0 so the serial reference stays serial even when
    # the suite itself runs under REPRO_WORKERS (the CI worker axis)
    db = Database(batch_tokens=True, parallel_workers=parallel_workers,
                  **kwargs)
    db.execute("create emp (name = text, sal = float8, age = int4)")
    db.execute("create log (name = text)")
    db.execute("define rule shard_r1 if emp.sal > 52 and emp.age > 21 "
               "then append to log(name = emp.name)")
    db.bulk_append("emp", ROWS)
    return db


class TestDatabaseWiring:
    def test_parallel_matches_serial(self):
        serial = _built()
        sharded = _built(parallel_workers=2)
        assert sorted(sharded.relation_rows("log")) == \
            sorted(serial.relation_rows("log"))
        assert sharded.firings == serial.firings
        assert sharded.stats.get("shard.batches") >= 1
        assert serial.stats.get("shard.batches") == 0
        sharded.close()
        serial.close()

    def test_process_backend_matches_serial(self):
        serial = _built()
        sharded = _built(parallel_workers=2,
                         parallel_backend="process")
        assert sorted(sharded.relation_rows("log")) == \
            sorted(serial.relation_rows("log"))
        sharded.close()
        serial.close()

    def test_runtime_resize_and_info(self):
        db = Database(parallel_workers=0)
        assert db.parallel_workers == 0
        assert db.parallel_info() is None
        db.set_parallel_workers(2, min_batch=4)
        assert db.parallel_workers == 2
        assert db.parallel_info() == {"workers": 2,
                                      "backend": "thread",
                                      "min_batch": 4}
        db.set_parallel_workers(3)     # inherits backend + min_batch
        assert db.parallel_info()["min_batch"] == 4
        db.set_parallel_workers(0)
        assert db.parallel_info() is None
        assert db.manager.network.worker_pool is None
        db.close()

    def test_close_dissolves_pool(self):
        db = Database(parallel_workers=2)
        db.close()
        assert db.parallel_workers == 0

    def test_env_configuration(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        db = Database()
        assert db.parallel_workers == 2
        db.close()
        explicit = Database(parallel_workers=0)
        assert explicit.parallel_workers == 0
        explicit.close()


class TestWorkersCommand:
    def _shell(self):
        out = io.StringIO()
        return Shell(Database(parallel_workers=0), out=out), out

    def test_reports_serial_default(self):
        sh, out = self._shell()
        sh.feed("\\workers")
        assert "serial" in out.getvalue()

    def test_sets_and_reports_workers(self):
        sh, out = self._shell()
        sh.feed("\\workers 4")
        sh.feed("\\workers")
        text = out.getvalue()
        assert "workers=4" in text and "thread" in text
        assert sh.db.parallel_workers == 4

    def test_backend_argument_and_reset(self):
        sh, out = self._shell()
        sh.feed("\\workers 2 process")
        assert sh.db.parallel_info()["backend"] == "process"
        sh.feed("\\workers 0")
        assert sh.db.parallel_workers == 0

    def test_rejects_garbage(self):
        sh, out = self._shell()
        sh.feed("\\workers many")
        assert "usage" in out.getvalue()


# ----------------------------------------------------------------------
# consolidated routing counters
# ----------------------------------------------------------------------


class TestRoutingCounters:
    def test_note_tokens_routed(self):
        stats = EngineStats()
        stats.note_tokens_routed()
        stats.note_tokens_routed(5, batches=1)
        assert stats.get("tokens.routed") == 6
        assert stats.get("tokens.batches") == 1

    def test_note_tokens_routed_disabled(self):
        stats = EngineStats(enabled=False)
        stats.note_tokens_routed(5, batches=1)
        assert stats.get("tokens.routed") == 0

    def test_merge_counts(self):
        stats = EngineStats()
        stats.bump("x", 2)
        stats.merge_counts({"x": 3, "y": 1})
        assert stats.get("x") == 5 and stats.get("y") == 1

    def test_sharded_counts_match_serial(self):
        serial = _built()
        sharded = _built(parallel_workers=4)
        for key in ("tokens.routed", "pnode.inserts",
                    "selection.probes", "selection.stab_memo_hits"):
            assert sharded.stats.get(key) == serial.stats.get(key), key
        sharded.close()
        serial.close()
