"""Tests for aggregates with POSTQUEL implicit grouping."""

import pytest

from repro.errors import SemanticError
from repro.lang.ast_nodes import deparse
from repro.lang.parser import parse_command
from tests.helpers import paper_engine


@pytest.fixture
def engine():
    return paper_engine()


class TestGlobalAggregates:
    def test_count_rows(self, engine):
        result = engine.run("retrieve (n = count(emp.all))")
        assert result.rows == [(25,)]
        assert result.columns == ("n",)

    def test_count_attribute(self, engine):
        engine.run('append emp(name="noage")')
        result = engine.run("retrieve (count(emp.age), count(emp.all))")
        assert result.rows == [(25, 26)]     # nulls skipped by count(attr)

    def test_sum_avg(self, engine):
        result = engine.run("retrieve (s = sum(emp.sal), "
                            "a = avg(emp.sal))")
        total = sum(20000 + 2000 * i for i in range(25))
        assert result.rows == [(float(total), total / 25)]

    def test_min_max(self, engine):
        result = engine.run("retrieve (lo = min(emp.sal), "
                            "hi = max(emp.sal))")
        assert result.rows == [(20000.0, 68000.0)]

    def test_min_max_text(self, engine):
        result = engine.run("retrieve (first = min(dept.name))")
        assert result.rows == [("Accounting",)]

    def test_aggregate_with_where(self, engine):
        result = engine.run("retrieve (n = count(emp.all)) "
                            "where emp.sal > 60000")
        assert result.rows == [(4,)]

    def test_empty_input_semantics(self, engine):
        result = engine.run("retrieve (n = count(emp.all), "
                            "s = sum(emp.sal), a = avg(emp.sal), "
                            "lo = min(emp.sal)) where emp.sal > 10000000")
        assert result.rows == [(0, None, None, None)]

    def test_expression_over_aggregates(self, engine):
        result = engine.run("retrieve (span = max(emp.age) - "
                            "min(emp.age))")
        assert result.rows == [(24,)]

    def test_aggregate_of_expression(self, engine):
        result = engine.run("retrieve (s = sum(emp.sal * 2)) "
                            "where emp.sal <= 22000")
        assert result.rows == [(84000.0,)]   # (20000 + 22000) * 2

    def test_default_column_name(self, engine):
        result = engine.run("retrieve (count(emp.all))")
        assert result.columns == ("count",)


class TestGroupedAggregates:
    def test_group_by_implicit(self, engine):
        result = engine.run("retrieve (emp.jno, n = count(emp.all))")
        assert sorted(result.rows) == [(1, 5), (2, 5), (3, 5), (4, 5),
                                       (5, 5)]

    def test_group_with_join(self, engine):
        result = engine.run(
            "retrieve (dept.name, n = count(emp.all)) "
            "where emp.dno = dept.dno and dept.dno <= 2")
        assert sorted(result.rows) == [("Sales", 4), ("Toy", 4)]

    def test_group_avg(self, engine):
        result = engine.run("retrieve (emp.jno, a = avg(emp.sal)) "
                            "where emp.jno <= 2")
        rows = dict(result.rows)
        # jno=1: i in 0,5,10,15,20 -> sal 20000+2000i
        assert rows[1] == pytest.approx(
            sum(20000 + 2000 * i for i in (0, 5, 10, 15, 20)) / 5)

    def test_multiple_group_keys(self, engine):
        result = engine.run("retrieve (emp.dno, emp.jno, "
                            "n = count(emp.all)) where emp.dno = 1")
        assert all(r[0] == 1 for r in result.rows)
        assert sum(r[2] for r in result.rows) == 4

    def test_group_key_expression(self, engine):
        result = engine.run("retrieve (bucket = emp.age / 10, "
                            "n = count(emp.all))")
        assert sum(n for _, n in result.rows) == 25

    def test_retrieve_into_aggregated(self, engine):
        engine.run("retrieve into stats (emp.jno, n = count(emp.all))")
        assert len(engine.catalog.relation("stats")) == 5


class TestAggregateErrors:
    def test_aggregate_in_where_rejected(self, engine):
        with pytest.raises(SemanticError):
            engine.run("retrieve (emp.name) "
                       "where count(emp.all) > 5")

    def test_aggregate_in_append_rejected(self, engine):
        engine.run("create t (n = int4)")
        with pytest.raises(SemanticError):
            engine.run("append t(n = count(emp.all))")

    def test_nested_aggregate_rejected(self, engine):
        with pytest.raises(SemanticError):
            engine.run("retrieve (x = sum(count(emp.all)))")

    def test_mixed_bare_attr_rejected(self, engine):
        with pytest.raises(SemanticError):
            engine.run("retrieve (x = emp.sal + count(emp.all))")

    def test_sum_of_text_rejected(self, engine):
        with pytest.raises(SemanticError):
            engine.run("retrieve (x = sum(emp.name))")

    def test_sum_of_all_rejected(self, engine):
        with pytest.raises(SemanticError):
            engine.run("retrieve (x = sum(emp.all))")

    def test_sort_by_on_aggregated_rejected(self, engine):
        with pytest.raises(SemanticError):
            engine.run("retrieve (emp.jno, n = count(emp.all)) "
                       "sort by emp.jno")

    def test_aggregate_in_rule_condition_rejected(self, engine):
        with pytest.raises(SemanticError):
            engine.analyzer.analyze(parse_command(
                "define rule r if count(emp.all) > 5 then delete emp"))


class TestDeparse:
    @pytest.mark.parametrize("text", [
        "retrieve (count(emp.all))",
        "retrieve (emp.dno, s = sum(emp.sal))",
        "retrieve (x = max(emp.age) - min(emp.age))",
    ])
    def test_round_trip(self, text):
        tree = parse_command(text)
        assert parse_command(deparse(tree)) == tree
