"""Tests for the interactive shell and introspection helpers."""

import io

import pytest

from repro import Database
from repro.cli import Shell
from repro.core.introspect import describe_rule, network_summary


@pytest.fixture
def shell():
    out = io.StringIO()
    sh = Shell(Database(), out=out)
    return sh, out


def feed_lines(sh, *lines):
    for line in lines:
        alive = sh.feed(line)
    return alive


def output_of(out):
    return out.getvalue()


class TestShellCommands:
    def test_create_and_retrieve(self, shell):
        sh, out = shell
        feed_lines(sh, "create t (a = int4);",
                   "append t(a = 5);",
                   "retrieve (t.a);")
        text = output_of(out)
        assert "ok" in text
        assert "1 tuple(s) affected" in text
        assert "5" in text
        assert "(1 row(s))" in text

    def test_multiline_with_blank_terminator(self, shell):
        sh, out = shell
        feed_lines(sh, "create t (a = int4)", "")
        assert "ok" in output_of(out)

    def test_do_block_gathers_until_end(self, shell):
        sh, out = shell
        feed_lines(sh, "create t (a = int4);",
                   "do",
                   "append t(a = 1)",
                   "append t(a = 2)",
                   "end;")
        assert "2" not in output_of(out).split("ok")[0]
        feed_lines(sh, "retrieve (t.a);")
        assert "(2 row(s))" in output_of(out)

    def test_rule_definition_with_semicolon(self, shell):
        sh, out = shell
        feed_lines(sh, "create t (a = int4);",
                   "define rule r if t.a > 5 then delete t;",
                   "append t(a = 9);",
                   "retrieve (t.a);")
        assert "(0 row(s))" in output_of(out)

    def test_error_reported_not_raised(self, shell):
        sh, out = shell
        feed_lines(sh, "retrieve (missing.a);")
        assert "error:" in output_of(out)

    def test_parse_error_reported(self, shell):
        sh, out = shell
        feed_lines(sh, "frobnicate;")
        assert "error:" in output_of(out)

    def test_quit(self, shell):
        sh, out = shell
        assert sh.feed("\\q") is False


class TestMetaCommands:
    def test_describe_relations(self, shell):
        sh, out = shell
        feed_lines(sh, "create emp (name = text, sal = float8);",
                   "\\d")
        assert "emp" in output_of(out)

    def test_describe_one_relation(self, shell):
        sh, out = shell
        feed_lines(sh, "create emp (name = text, sal = float8);",
                   "define index isal on emp (sal);",
                   "\\d emp")
        text = output_of(out)
        assert "name" in text and "float8" in text
        assert "index isal" in text

    def test_rules_listing(self, shell):
        sh, out = shell
        feed_lines(sh, "create t (a = int4);",
                   "define rule r if t.a > 5 then delete t;",
                   "\\rules")
        text = output_of(out)
        assert "r" in text and "active" in text

    def test_rule_description(self, shell):
        sh, out = shell
        feed_lines(sh, "create t (a = int4);",
                   "define rule r if t.a > 5 then delete t;",
                   "\\rule r")
        text = output_of(out)
        assert "simple-α" in text
        assert "delete' P.t" in text

    def test_plan_shows_join_order_and_indexes(self, shell):
        sh, out = shell
        feed_lines(sh, "create l (k = int4);",
                   "create r (k = int4);",
                   "append r(k = 1);",
                   "define rule j if l.k = r.k then delete l;",
                   "\\plan j")
        text = output_of(out)
        assert "join plan for rule j" in text
        assert "seek from l: l -> r" in text
        assert "join-index(es)" in text or "virtual" in text

    def test_plan_usage_and_unknown_rule(self, shell):
        sh, out = shell
        feed_lines(sh, "\\plan")
        assert "usage: \\plan" in output_of(out)
        feed_lines(sh, "\\plan nope")
        assert "error:" in output_of(out)

    def test_plan_inactive_rule(self, shell):
        sh, out = shell
        feed_lines(sh, "create t (a = int4);",
                   "define rule r if t.a > 5 then delete t;",
                   "deactivate rule r;",
                   "\\plan r")
        assert "not active" in output_of(out)

    def test_explain(self, shell):
        sh, out = shell
        feed_lines(sh, "create t (a = int4);",
                   "\\explain retrieve (t.a) where t.a = 1")
        assert "SeqScan" in output_of(out)

    def test_transaction_meta(self, shell):
        sh, out = shell
        feed_lines(sh, "create t (a = int4);",
                   "\\begin",
                   "append t(a = 1);",
                   "\\abort",
                   "retrieve (t.a);")
        assert "(0 row(s))" in output_of(out)

    def test_net(self, shell):
        sh, out = shell
        feed_lines(sh, "\\net")
        assert "network=A-TREAT" in output_of(out)

    def test_unknown_meta(self, shell):
        sh, out = shell
        feed_lines(sh, "\\bogus")
        assert "unknown meta-command" in output_of(out)

    def test_meta_error_reported(self, shell):
        sh, out = shell
        feed_lines(sh, "\\rule nothere")
        assert "error:" in output_of(out)


class TestIntrospection:
    def make_db(self):
        db = Database()
        db.execute_script("""
            create emp (name = text, sal = float8, dno = int4)
            create dept (dno = int4, name = text)
            create log (name = text)
        """)
        return db

    def test_describe_active_rule(self):
        db = self.make_db()
        db.execute('define rule r priority 3 '
                   'if emp.sal > 1000 and emp.dno = dept.dno '
                   'and dept.name = "Toy" '
                   'then append to log(emp.name)')
        text = describe_rule(db.manager, "r")
        assert "priority: 3.0" in text
        assert "anchor sal in (1000" in text
        assert "joins: emp.dno = dept.dno" in text
        assert "P-node: 0 match(es)" in text
        assert "append to log (P.emp.name)" in text

    def test_describe_installed_rule(self):
        db = self.make_db()
        db.execute("define rule r if emp.sal > 1 then delete emp")
        db.execute("deactivate rule r")
        text = describe_rule(db.manager, "r")
        assert "installed" in text
        assert "then:" in text

    def test_describe_event_rule(self):
        db = self.make_db()
        db.execute("define rule r on replace emp(sal) "
                   "then append to log(emp.name)")
        text = describe_rule(db.manager, "r")
        assert "event:    on replace emp (sal)" in text
        assert "dynamic-on" in text or "simple-on" in text

    def test_network_summary(self):
        db = self.make_db()
        db.execute("define rule r if emp.sal > 1 then delete emp")
        db.execute('append emp(name="a", sal=5.0, dno=1)')
        text = network_summary(db.manager)
        assert "network: A-TREAT" in text
        assert "anchored predicate(s)" in text
        assert "tokens processed:" in text

    def test_network_summary_empty(self):
        db = self.make_db()
        assert "no rules installed" in network_summary(db.manager)


class TestMain:
    def test_script_loading(self, tmp_path, monkeypatch):
        from repro import cli
        script = tmp_path / "setup.arl"
        script.write_text("create t (a = int4)\nappend t(a = 1)\n")
        monkeypatch.setattr("sys.stdin", io.StringIO("\\q\n"))
        assert cli.main([str(script)]) == 0

    def test_script_error(self, tmp_path, monkeypatch, capsys):
        from repro import cli
        script = tmp_path / "bad.arl"
        script.write_text("frobnicate\n")
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert cli.main([str(script)]) == 1
        assert "error loading" in capsys.readouterr().err
