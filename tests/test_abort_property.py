"""Property: an aborted transaction is observationally a no-op.

For random update sequences split into a prefix and a transactional
suffix, ``prefix; begin; suffix; abort`` must leave the database — data
AND rule-network behavior — indistinguishable from running the prefix
alone.  Behavioral equality is checked by applying a common probe
workload to both databases afterwards and comparing everything again
(DESIGN.md invariant 6, extended to the rule system)."""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro import Database
from repro.errors import ExecutionError

from tests.test_network_equivalence import (
    RULES, apply_ops, _op, pnode_snapshot)


def build(rules, **kwargs):
    db = Database(**kwargs)
    db.execute("create t (a = int4, k = int4)")
    db.execute("create u (b = int4, k = int4)")
    db.execute("create v (c = int4, k = int4)")
    db.execute("create log (tag = text)")
    for rule in rules:
        db.execute(rule)
    return db


def state_of(db):
    return {
        "t": sorted(db.relation_rows("t")),
        "u": sorted(db.relation_rows("u")),
        "v": sorted(db.relation_rows("v")),
        "log": sorted(db.relation_rows("log")),
    }


@settings(max_examples=25, deadline=None)
@given(st.lists(_op, min_size=0, max_size=8),
       st.lists(_op, min_size=1, max_size=8),
       st.lists(_op, min_size=1, max_size=5),
       st.sets(st.integers(0, len(RULES) - 1), min_size=1, max_size=3))
# Regression: deleting (in the transaction) a tuple whose match a firing
# consumed *before* the transaction, then aborting, must not resurrect
# the consumed match — the probe's transient a=6 would fire it again.
@example(prefix=[("insert", "t", 0), ("insert", "t", 0),
                 ("insert", "t", 0), ("insert", "t", 6)],
         suffix=[("delete", "t", 28)],
         probe=[("block", 6, 0)],
         rule_indexes={0})
def test_abort_is_a_noop(prefix, suffix, probe, rule_indexes):
    rules = [RULES[i] for i in sorted(rule_indexes)]
    aborted = build(rules)
    apply_ops(aborted, prefix)
    aborted.begin()
    apply_ops(aborted, suffix)
    aborted.abort()

    reference = build(rules)
    apply_ops(reference, prefix)

    assert state_of(aborted) == state_of(reference)

    # Behavioral equality: the networks must react identically from here.
    apply_ops(aborted, probe)
    apply_ops(reference, probe)
    assert state_of(aborted) == state_of(reference)


@settings(max_examples=15, deadline=None)
@given(st.lists(_op, min_size=1, max_size=6),
       st.sets(st.integers(0, len(RULES) - 1), min_size=1, max_size=3))
def test_commit_then_more_work(ops, rule_indexes):
    """Counterpart sanity: committed work equals autocommitted work."""
    rules = [RULES[i] for i in sorted(rule_indexes)]
    committed = build(rules)
    committed.begin()
    apply_ops(committed, ops)
    committed.commit()

    plain = build(rules)
    apply_ops(plain, ops)

    assert state_of(committed) == state_of(plain)


# ----------------------------------------------------------------------
# abort with batched token routing (``batch_tokens=True``)
# ----------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(st.lists(_op, min_size=0, max_size=8),
       st.lists(_op, min_size=1, max_size=8),
       st.lists(_op, min_size=1, max_size=5),
       st.sets(st.integers(0, len(RULES) - 1), min_size=1, max_size=3),
       st.lists(st.tuples(st.sampled_from("tuv"), st.integers(0, 10)),
                min_size=1, max_size=4))
def test_abort_discards_pending_deferred_tokens(prefix, suffix, probe,
                                                rule_indexes, danglers):
    """Abort while deferred token groups are still pending (the state a
    failure mid-transition leaves behind under ``batch_tokens=True``)
    must discard them and leave α-memories and P-nodes equal to a
    rebuild from the surviving heap."""
    rules = [RULES[i] for i in sorted(rule_indexes)]
    aborted = build(rules, batch_tokens=True)
    apply_ops(aborted, prefix)
    aborted.begin()
    apply_ops(aborted, suffix)
    # mutate through the hooks directly so the mutations' token groups
    # stay buffered — the shape of a transition interrupted between its
    # heap writes and its boundary flush
    for rel, value in danglers:
        col = {"t": "a", "u": "b", "v": "c"}[rel]
        row = {"a": None, "b": None, "c": None, "k": 999}
        row[col] = value
        schema_order = {"t": ("a", "k"), "u": ("b", "k"),
                        "v": ("c", "k")}[rel]
        aborted.hooks.insert(rel, tuple(
            row[name] if row[name] is not None else value
            for name in schema_order))
    assert aborted.hooks._buffer, "test needs pending deferred groups"
    aborted.abort()
    assert not aborted.hooks._buffer

    reference = build(rules, batch_tokens=True)
    apply_ops(reference, prefix)

    assert state_of(aborted) == state_of(reference)
    assert pnode_snapshot(aborted) == pnode_snapshot(reference)
    assert _alpha_values(aborted) == _alpha_values(reference)

    apply_ops(aborted, probe)
    apply_ops(reference, probe)
    assert state_of(aborted) == state_of(reference)


def test_abort_after_failing_rule_action_with_batched_tokens():
    """Deterministic shape of the same invariant: a rule action that
    fails mid-transaction leaves deferred groups pending; abort must
    still restore the pre-transaction state exactly."""
    rule = ("define rule bad on append t if t.a = 5 "
            "then append to u(b = t.k / (t.a - t.a), k = 99)")
    db = build([], batch_tokens=True)
    db.execute(rule)
    db.execute("append u(b = 1, k = 1)")
    db.execute("append t(a = 1, k = 1)")
    db.begin()
    with pytest.raises(ExecutionError):
        db.execute("append t(a = 5, k = 2)")
    db.abort()

    reference = build([], batch_tokens=True)
    reference.execute(rule)
    reference.execute("append u(b = 1, k = 1)")
    reference.execute("append t(a = 1, k = 1)")

    assert state_of(db) == state_of(reference)
    assert pnode_snapshot(db) == pnode_snapshot(reference)
    assert _alpha_values(db) == _alpha_values(reference)
    # behavior afterwards is identical too
    db.execute("append t(a = 2, k = 3)")
    reference.execute("append t(a = 2, k = 3)")
    assert state_of(db) == state_of(reference)


def _alpha_values(db):
    """Stored α-memory contents as sorted value lists (TID-free)."""
    out = {}
    for (rule, var), memory in db.network._memories.items():
        if memory.is_virtual:
            continue
        out[(rule, var)] = sorted(
            entry.values for entry in memory.entries())
    return out
