"""Property: an aborted transaction is observationally a no-op.

For random update sequences split into a prefix and a transactional
suffix, ``prefix; begin; suffix; abort`` must leave the database — data
AND rule-network behavior — indistinguishable from running the prefix
alone.  Behavioral equality is checked by applying a common probe
workload to both databases afterwards and comparing everything again
(DESIGN.md invariant 6, extended to the rule system)."""

from hypothesis import example, given, settings, strategies as st

from repro import Database

from tests.test_network_equivalence import RULES, apply_ops, _op


def build(rules):
    db = Database()
    db.execute("create t (a = int4, k = int4)")
    db.execute("create u (b = int4, k = int4)")
    db.execute("create v (c = int4, k = int4)")
    db.execute("create log (tag = text)")
    for rule in rules:
        db.execute(rule)
    return db


def state_of(db):
    return {
        "t": sorted(db.relation_rows("t")),
        "u": sorted(db.relation_rows("u")),
        "v": sorted(db.relation_rows("v")),
        "log": sorted(db.relation_rows("log")),
    }


@settings(max_examples=25, deadline=None)
@given(st.lists(_op, min_size=0, max_size=8),
       st.lists(_op, min_size=1, max_size=8),
       st.lists(_op, min_size=1, max_size=5),
       st.sets(st.integers(0, len(RULES) - 1), min_size=1, max_size=3))
# Regression: deleting (in the transaction) a tuple whose match a firing
# consumed *before* the transaction, then aborting, must not resurrect
# the consumed match — the probe's transient a=6 would fire it again.
@example(prefix=[("insert", "t", 0), ("insert", "t", 0),
                 ("insert", "t", 0), ("insert", "t", 6)],
         suffix=[("delete", "t", 28)],
         probe=[("block", 6, 0)],
         rule_indexes={0})
def test_abort_is_a_noop(prefix, suffix, probe, rule_indexes):
    rules = [RULES[i] for i in sorted(rule_indexes)]
    aborted = build(rules)
    apply_ops(aborted, prefix)
    aborted.begin()
    apply_ops(aborted, suffix)
    aborted.abort()

    reference = build(rules)
    apply_ops(reference, prefix)

    assert state_of(aborted) == state_of(reference)

    # Behavioral equality: the networks must react identically from here.
    apply_ops(aborted, probe)
    apply_ops(reference, probe)
    assert state_of(aborted) == state_of(reference)


@settings(max_examples=15, deadline=None)
@given(st.lists(_op, min_size=1, max_size=6),
       st.sets(st.integers(0, len(RULES) - 1), min_size=1, max_size=3))
def test_commit_then_more_work(ops, rule_indexes):
    """Counterpart sanity: committed work equals autocommitted work."""
    rules = [RULES[i] for i in sorted(rule_indexes)]
    committed = build(rules)
    committed.begin()
    apply_ops(committed, ops)
    committed.commit()

    plain = build(rules)
    apply_ops(plain, ops)

    assert state_of(committed) == state_of(plain)
