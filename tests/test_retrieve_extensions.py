"""Tests for retrieve extensions: sort by, unique."""

import pytest

from repro.errors import SemanticError
from repro.lang.ast_nodes import deparse
from repro.lang.parser import parse_command
from tests.helpers import paper_engine


@pytest.fixture
def engine():
    return paper_engine()


class TestSortBy:
    def test_ascending_default(self, engine):
        result = engine.run("retrieve (emp.name) where emp.sal > 60000 "
                            "sort by emp.sal")
        assert result.column("name") == ["emp21", "emp22", "emp23",
                                         "emp24"]

    def test_descending(self, engine):
        result = engine.run("retrieve (emp.name) where emp.sal > 60000 "
                            "sort by emp.sal desc")
        assert result.column("name") == ["emp24", "emp23", "emp22",
                                         "emp21"]

    def test_explicit_asc(self, engine):
        result = engine.run("retrieve (emp.name) where emp.sal > 62000 "
                            "sort by emp.sal asc")
        assert result.column("name") == ["emp22", "emp23", "emp24"]

    def test_multiple_keys(self, engine):
        result = engine.run("retrieve (emp.name, emp.dno) "
                            "where emp.sal > 54000 "
                            "sort by emp.dno, emp.sal desc")
        rows = result.rows
        dnos = [r[1] for r in rows]
        assert dnos == sorted(dnos)
        # within each dno, salaries (derived from names here) descend
        for dno in set(dnos):
            names = [r[0] for r in rows if r[1] == dno]
            assert names == sorted(names, reverse=True)

    def test_sort_by_expression(self, engine):
        result = engine.run("retrieve (emp.name) where emp.sal > 62000 "
                            "sort by 0 - emp.sal")
        assert result.column("name") == ["emp24", "emp23", "emp22"]

    def test_sort_by_string(self, engine):
        result = engine.run("retrieve (dept.name) sort by dept.name")
        assert result.column("name") == sorted(result.column("name"))

    def test_sort_on_join(self, engine):
        result = engine.run(
            "retrieve (emp.name, dept.name) "
            "where emp.dno = dept.dno and emp.sal > 58000 "
            "sort by dept.name, emp.name")
        assert result.rows == sorted(result.rows,
                                     key=lambda r: (r[1], r[0]))

    def test_nulls_sort_last(self, engine):
        engine.run('append emp(name="noage")')
        result = engine.run("retrieve (emp.name) sort by emp.age")
        assert result.column("name")[-1] == "noage"

    def test_nulls_last_descending_too(self, engine):
        engine.run('append emp(name="noage")')
        result = engine.run("retrieve (emp.name) sort by emp.age desc")
        assert result.column("name")[-1] == "noage"

    def test_boolean_sort_rejected(self, engine):
        with pytest.raises(SemanticError):
            engine.run("retrieve (emp.name) sort by emp.age > 5")

    def test_sort_var_only_in_sort_clause(self, engine):
        # dept only appears in the sort key: it still joins (cartesian)
        result = engine.run("retrieve (job.title) from j in job "
                            "sort by j.paygrade desc"
                            .replace("job.title", "j.title"))
        assert result.column("title")[0] == "Manager"


class TestUnique:
    def test_unique_dedupes(self, engine):
        result = engine.run("retrieve unique (emp.dno)")
        assert sorted(result.column("dno")) == [1, 2, 3, 4, 5, 6, 7]

    def test_without_unique_keeps_duplicates(self, engine):
        result = engine.run("retrieve (emp.dno)")
        assert len(result) == 25

    def test_unique_with_sort(self, engine):
        result = engine.run("retrieve unique (emp.dno) sort by emp.dno "
                            "desc")
        assert result.column("dno") == [7, 6, 5, 4, 3, 2, 1]


class TestParsingRoundTrip:
    CASES = [
        "retrieve (emp.name) sort by emp.sal",
        "retrieve (emp.name) sort by emp.sal desc, emp.age",
        "retrieve unique (emp.dno)",
        "retrieve unique into t (emp.dno) where emp.sal > 5 "
        "sort by emp.dno desc",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_round_trip(self, text):
        tree = parse_command(text)
        assert parse_command(deparse(tree)) == tree

    def test_sort_requires_by(self):
        from repro.errors import ParseError
        with pytest.raises(ParseError):
            parse_command("retrieve (emp.name) sort emp.sal")
