"""Unit tests for semantic analysis."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.errors import SemanticError
from repro.lang.parser import parse_command
from repro.lang.semantic import SemanticAnalyzer


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.create_relation("emp", Schema.of(
        name="text", age="int", sal="float", dno="int", jno="int"))
    cat.create_relation("dept", Schema.of(
        dno="int", name="text", building="text"))
    cat.create_relation("job", Schema.of(
        jno="int", title="text", paygrade="int", description="text"))
    cat.create_relation("salaryerror", Schema.of(
        name="text", oldsal="float", newsal="float"))
    cat.create_relation("log", Schema.of(name="text"))
    return cat


@pytest.fixture
def analyzer(catalog):
    return SemanticAnalyzer(catalog)


def check(analyzer, text):
    return analyzer.analyze(parse_command(text))


class TestDDL:
    def test_create_ok(self, analyzer):
        check(analyzer, "create proj (pno = int, pname = text)")

    def test_create_duplicate_relation(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "create emp (x = int)")

    def test_create_duplicate_column(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "create t (x = int, x = text)")

    def test_create_bad_type(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "create t (x = blob)")

    def test_destroy_missing(self, analyzer):
        with pytest.raises(Exception):
            check(analyzer, "destroy nothere")

    def test_index_ok(self, analyzer):
        check(analyzer, "define index isal on emp (sal) using btree")

    def test_index_bad_attribute(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "define index ix on emp (bogus)")

    def test_index_bad_kind(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "define index ix on emp (sal) using gin")

    def test_index_bad_kind_lists_accepted_kinds(self, analyzer):
        with pytest.raises(SemanticError) as err:
            check(analyzer, "define index ix on emp (sal) using gin")
        message = str(err.value)
        assert "'gin'" in message
        assert "btree" in message and "hash" in message

    def test_create_bad_type_lists_accepted_names(self, analyzer):
        with pytest.raises(SemanticError) as err:
            check(analyzer, "create t (x = blob)")
        message = str(err.value)
        assert "int4" in message and "boolean" in message


class TestAppend:
    def test_named_ok(self, analyzer):
        cmd = check(analyzer, 'append emp(name="A", age=30, sal=1.0, '
                              'dno=1, jno=1)')
        assert all(t.name for t in cmd.targets)

    def test_named_partial_ok(self, analyzer):
        check(analyzer, 'append emp(name="A")')

    def test_positional_ok(self, analyzer):
        check(analyzer, 'append emp("A", 30, 1.0, 1, 1)')

    def test_positional_arity_mismatch(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, 'append emp("A", 30)')

    def test_mixed_targets_rejected(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, 'append emp(name="A", 30)')

    def test_unknown_attribute(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "append emp(bogus=1)")

    def test_type_mismatch(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, 'append emp(age="thirty")')

    def test_int_widens_to_float(self, analyzer):
        check(analyzer, "append emp(sal=50000)")

    def test_float_does_not_narrow_to_int(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "append emp(age=30.5)")

    def test_duplicate_target(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "append emp(age=1, age=2)")

    def test_all_expansion(self, analyzer):
        cmd = check(analyzer, "append log(dept.name) where dept.dno = 1")
        assert cmd.targets[0].expr.position == 1

    def test_unknown_relation(self, analyzer):
        with pytest.raises(Exception):
            check(analyzer, "append nothere(x=1)")


class TestDeleteReplace:
    def test_delete_implicit_var(self, analyzer):
        cmd = check(analyzer, 'delete emp where emp.name = "Bob"')
        assert cmd.where.left.position == 0

    def test_delete_from_list(self, analyzer):
        check(analyzer, "delete e from e in emp where e.age > 90")

    def test_delete_unknown_var(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "delete nothere")

    def test_replace_ok(self, analyzer):
        cmd = check(analyzer, "replace emp (sal = 30000) "
                              'where emp.dno = dept.dno and '
                              'dept.name = "Sales"')
        assert cmd.assignments[0].name == "sal"

    def test_replace_unknown_attr(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "replace emp (bogus = 1)")

    def test_replace_duplicate_assignment(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "replace emp (age = 1, age = 2)")

    def test_replace_type_mismatch(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, 'replace emp (age = "x")')


class TestRetrieve:
    def test_ok(self, analyzer):
        cmd = check(analyzer, "retrieve (emp.name, emp.sal) "
                              "where emp.age > 30")
        assert cmd.targets[0].expr.position == 0

    def test_all_expansion(self, analyzer):
        cmd = check(analyzer, "retrieve (dept.all)")
        assert len(cmd.targets) == 3

    def test_into_existing_rejected(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "retrieve into emp (dept.name)")

    def test_derived_duplicate_names_allowed(self, analyzer):
        # attr names from different variables may collide; only explicit
        # renames must be unique
        check(analyzer, "retrieve (emp.name, dept.name)")

    def test_explicit_duplicate_names_rejected(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "retrieve (n = emp.name, n = dept.name)")

    def test_renamed_duplicates_ok(self, analyzer):
        check(analyzer, "retrieve (emp.name, dname = dept.name)")

    def test_self_join_via_from(self, analyzer):
        check(analyzer, "retrieve (a.name, b.name2) "
                        "from a in emp, b in emp "
                        "where a.dno = b.dno" .replace("name2", "age"))

    def test_where_must_be_boolean(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "retrieve (emp.name) where emp.age + 1")

    def test_comparison_type_mismatch(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, 'retrieve (emp.name) where emp.age = "x"')


class TestExpressionsRules:
    def test_previous_outside_rule_rejected(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "retrieve (emp.name) "
                            "where emp.sal > previous emp.sal")

    def test_new_outside_rule_rejected(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "retrieve (emp.name) where new(emp)")

    def test_rule_with_previous_ok(self, analyzer):
        check(analyzer, "define rule r if emp.sal > 1.1 * previous emp.sal "
                        "then append to salaryerror(emp.name, "
                        "previous emp.sal, emp.sal)")

    def test_rule_with_new_ok(self, analyzer):
        check(analyzer, "define rule r if new(emp) "
                        "then append to log(emp.name)")

    def test_rule_condition_must_be_boolean(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "define rule r if emp.age + 1 then delete emp")

    def test_rule_needs_condition_or_event(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "define rule r then delete emp")

    def test_event_only_rule_ok(self, analyzer):
        check(analyzer, "define rule r on delete emp "
                        "then append to log(emp.name)")

    def test_event_attrs_only_for_replace(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "define rule r on append emp(sal) "
                            "then delete emp")

    def test_event_replace_attrs_ok(self, analyzer):
        check(analyzer, "define rule r on replace emp(sal) "
                        "then append to log(emp.name)")

    def test_event_bad_attr(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "define rule r on replace emp(bogus) "
                            "then delete emp")

    def test_finddemotions(self, analyzer):
        check(analyzer,
              "define rule finddemotions on replace emp(jno) "
              "if newjob.jno = emp.jno "
              "and oldjob.jno = previous emp.jno "
              "and newjob.paygrade < oldjob.paygrade "
              "from oldjob in job, newjob in job "
              "then append to log(emp.name)")

    def test_rule_action_shares_condition_vars(self, analyzer):
        cmd = check(analyzer,
                    "define rule r if emp.dno = dept.dno "
                    'and dept.name = "Toy" '
                    "then append to log(emp.name)")
        append = cmd.action
        assert append.targets[0].expr.position == 0

    def test_duplicate_rule_name(self, analyzer, catalog):
        catalog.store_rule("r", object())
        with pytest.raises(SemanticError):
            check(analyzer, "define rule r if new(emp) then delete emp")

    def test_rule_management_not_in_action(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "define rule r if new(emp) "
                            "then create t (x = int)")

    def test_nested_blocks_rejected(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "define rule r if new(emp) then do "
                            "do delete emp end end")

    def test_block_outside_rule_nested_rejected(self, analyzer):
        # the parser accepts nested do blocks syntactically only when
        # written as commands; semantic analysis rejects them
        with pytest.raises(SemanticError):
            check(analyzer, "do do delete emp end end")

    def test_rule_definition_inside_block_rejected(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "do define rule r if new(emp) then delete emp "
                            "end")

    def test_var_bound_twice_conflicting(self, analyzer):
        with pytest.raises(SemanticError):
            check(analyzer, "retrieve (e.name) from e in emp, e in dept")
