"""Property test: the seek join order is a pure performance choice.

Whatever permutation of the remaining variables the planner (or anyone,
via the ``forced`` hook) picks, the P-node must end up with exactly the
same match set — byte for byte over the bound values.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro import Database

_VARS = ("a", "b", "c")
_PERMUTATIONS = list(itertools.permutations(("b", "c")))


def _matches(db, rule_name):
    """A canonical, fully-ordered rendering of a P-node's match set."""
    return sorted(
        tuple(sorted((var, entry.values) for var, entry in m.bindings))
        for m in db.network.pnode(rule_name).matches())


def _build(order_index, policy, a_rows, b_rows, c_rows, extra):
    db = Database(virtual_policy=policy)
    db.execute_script("""
        create a (x = int4, y = int4)
        create b (x = int4, z = int4)
        create c (z = int4)
    """)
    if a_rows:
        db.bulk_append("a", a_rows)
    if b_rows:
        db.bulk_append("b", b_rows)
    if c_rows:
        db.bulk_append("c", c_rows)
    db._rules_suspended = True
    # every seek from seed "a" walks the forced (b, c) permutation;
    # seeds "b"/"c" get the matching rotation of the remaining vars
    forced_tail = _PERMUTATIONS[order_index]

    db.execute("define rule r if a.x = b.x and b.z = c.z "
               "then delete a")
    db.network.join_planner.forced = \
        lambda rule, seed: [v for v in forced_tail + _VARS
                            if v != seed][:len(rule.variables) - 1]
    for relation, values in extra:
        db.bulk_append(relation, [values])
    return db


_small_int = st.integers(min_value=0, max_value=3)
_a_rows = st.lists(st.tuples(_small_int, _small_int), max_size=6)
_b_rows = st.lists(st.tuples(_small_int, _small_int), max_size=6)
_c_rows = st.lists(st.tuples(_small_int), max_size=4)
_extra = st.lists(
    st.one_of(
        st.tuples(st.just("a"), st.tuples(_small_int, _small_int)),
        st.tuples(st.just("b"), st.tuples(_small_int, _small_int)),
        st.tuples(st.just("c"), st.tuples(_small_int))),
    max_size=4)


@settings(max_examples=40, deadline=None)
@given(a_rows=_a_rows, b_rows=_b_rows, c_rows=_c_rows, extra=_extra,
       policy=st.sampled_from(["never", "always", "auto"]))
def test_any_join_order_same_matches(a_rows, b_rows, c_rows, extra,
                                     policy):
    reference = None
    for index in range(len(_PERMUTATIONS)):
        db = _build(index, policy, a_rows, b_rows, c_rows, extra)
        found = _matches(db, "r")
        if reference is None:
            reference = found
        else:
            assert found == reference, (
                f"permutation {_PERMUTATIONS[index]} under policy "
                f"{policy!r} changed the match set")


def test_forced_permutations_exhaustive_small_case():
    """A deterministic anchor: every permutation over a fixed dataset."""
    a_rows = [(1, 0), (2, 0), (1, 1)]
    b_rows = [(1, 5), (1, 6), (2, 5)]
    c_rows = [(5,), (6,)]
    extra = [("a", (1, 9)), ("b", (2, 6)), ("c", (5,))]
    results = [
        _matches(_build(i, policy, a_rows, b_rows, c_rows, extra), "r")
        for policy in ("never", "always")
        for i in range(len(_PERMUTATIONS))]
    assert all(r == results[0] for r in results)
    assert results[0]      # the case is non-trivial: matches exist
