"""Write-ahead log: record format, torn tails, retries, degraded mode,
checkpointing, and deterministic crash-recovery scenarios."""

import os
import struct

import pytest

from repro.db import Database
from repro.errors import (
    DegradedError, DurabilityError, TransactionError, WalCorruptError)
from repro.faults import SimulatedCrash
from repro.observe import EngineStats
from repro.txn.wal import (
    WriteAheadLog, decode_values, encode_values)

_HEADER = struct.Struct("<II")


def make_db(tmp_path, **kwargs):
    db = Database(durable_path=tmp_path / "state", **kwargs)
    # fault tests retry fast and never sleep for real
    db._durability.wal.retry_backoff = 0.0
    db._durability.wal._sleep = lambda delay: None
    db._durability._wal_kwargs.update(retry_backoff=0.0,
                                      sleep=lambda delay: None)
    return db


def wal_path(db):
    return db._durability.wal_path


class TestValueCodec:
    def test_round_trip(self):
        values = (1, -2.5, "a\nb\r\"c\\", None, True, False,
                  float("inf"), float("-inf"))
        assert decode_values(encode_values(values)) == values

    def test_nan_round_trips(self):
        [value] = decode_values(encode_values((float("nan"),)))
        assert value != value


class TestLogFile:
    def test_records_survive_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        log = WriteAheadLog(path)
        log.create(1)
        log.append([["i", "t", ["1"]]], sync=True)
        log.append([["d", "t", ["1"]]], sync=True)
        log.close()
        reopened = WriteAheadLog(path)
        records = reopened.open()
        assert records == [[["i", "t", ["1"]]], [["d", "t", ["1"]]]]
        assert reopened.generation == 1
        assert reopened.data_records == 2
        reopened.close()

    def test_torn_tail_truncated(self, tmp_path):
        path = tmp_path / "wal.log"
        log = WriteAheadLog(path)
        log.create(1)
        log.append([["i", "t", ["1"]]], sync=True)
        log.close()
        good_size = path.stat().st_size
        with open(path, "ab") as f:
            f.write(_HEADER.pack(1000, 12345))
            f.write(b"only a few bytes")
        reopened = WriteAheadLog(path)
        assert reopened.open() == [[["i", "t", ["1"]]]]
        reopened.close()
        assert path.stat().st_size == good_size

    def test_corrupt_final_record_treated_as_torn(self, tmp_path):
        path = tmp_path / "wal.log"
        log = WriteAheadLog(path)
        log.create(1)
        log.append([["i", "t", ["1"]]], sync=True)
        log.append([["i", "t", ["2"]]], sync=True)
        log.close()
        with open(path, "r+b") as f:
            f.seek(-1, os.SEEK_END)
            f.write(b"\xff")
        reopened = WriteAheadLog(path)
        assert reopened.open() == [[["i", "t", ["1"]]]]
        reopened.close()

    def test_corruption_before_end_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        log = WriteAheadLog(path)
        log.create(1)
        log.append([["i", "t", ["1"]]], sync=True)
        first_end = path.stat().st_size
        log.append([["i", "t", ["2"]]], sync=True)
        log.close()
        with open(path, "r+b") as f:
            f.seek(first_end - 1)
            f.write(b"\xff")
        broken = WriteAheadLog(path)
        with pytest.raises(WalCorruptError) as info:
            broken.open()
        assert info.value.path == str(path)
        assert info.value.offset is not None

    def test_missing_generation_header(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"")
        with pytest.raises(WalCorruptError, match="generation"):
            WriteAheadLog(path).open()

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(DurabilityError, match="fsync policy"):
            WriteAheadLog(tmp_path / "wal.log", fsync="sometimes")

    def test_fsync_policy_counters(self, tmp_path):
        for policy, expected in (("always", 3), ("commit", 2),
                                 ("never", 0)):
            stats = EngineStats()
            log = WriteAheadLog(tmp_path / f"{policy}.log", fsync=policy,
                                stats=stats)
            log.create(1)
            log.append([["x"]], sync=False)
            log.append([["y"]], sync=True)
            log.append([["z"]], sync=True)
            log.close()
            assert stats.get("wal.fsyncs") == expected, policy
            assert stats.get("wal.records") == 3


class TestRetries:
    def test_transient_error_retried(self, tmp_path):
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        db.faults.arm("wal.append", times=2)
        db.execute("append t(a = 1)")
        assert db.relation_rows("t") == [(1,)]
        assert db.stats.get("wal.retries") == 2
        assert db.stats.get("faults.injected") == 2
        assert db.degraded is None
        db.close()
        assert Database.recover(
            tmp_path / "state").relation_rows("t") == [(1,)]

    def test_exhaustion_degrades_to_read_only(self, tmp_path):
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        db.execute("append t(a = 1)")
        db.faults.arm("wal.append", times=100)
        with pytest.raises(DegradedError):
            db.execute("append t(a = 2)")
        assert db.degraded is not None
        # reads still served; every write path refused
        assert db.query("retrieve (t.a)").rows == [(1,), (2,)]
        assert db.explain("retrieve (t.a)")
        with pytest.raises(DegradedError):
            db.execute("append t(a = 3)")
        with pytest.raises(DegradedError):
            db.execute("create u (b = int4)")
        with pytest.raises(DegradedError):
            db.begin()
        with pytest.raises(DegradedError):
            db.bulk_append("t", [(4,)])
        with pytest.raises(DegradedError):
            db.checkpoint()
        prepared = db.prepare("append t(a = $a)")
        with pytest.raises(DegradedError):
            prepared.execute(a=5)
        # the counters the issue promises in \stats
        report = db.stats.report()
        assert "faults.injected" in report
        assert "wal.retries" in report
        db.close()
        # only the durable prefix survives
        assert Database.recover(
            tmp_path / "state").relation_rows("t") == [(1,)]


class TestCrashRecovery:
    def test_crash_before_append_loses_only_last_op(self, tmp_path):
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        db.execute("append t(a = 1)")
        db.faults.arm("wal.append", crash=True)
        with pytest.raises(SimulatedCrash):
            db.execute("append t(a = 2)")
        assert Database.recover(
            tmp_path / "state").relation_rows("t") == [(1,)]

    def test_torn_write_truncated_on_recovery(self, tmp_path):
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        db.execute("append t(a = 1)")
        size_before = wal_path(db).stat().st_size
        db.faults.arm("wal.append", crash=True, torn=0.6)
        with pytest.raises(SimulatedCrash):
            db.execute("append t(a = 2)")
        assert wal_path(db).stat().st_size > size_before
        recovered = Database.recover(tmp_path / "state")
        assert recovered.relation_rows("t") == [(1,)]
        assert recovered._durability.wal_path.stat(
            ).st_size == size_before

    def test_crash_at_fsync_keeps_the_record(self, tmp_path):
        db = make_db(tmp_path, fsync="always")
        db.execute("create t (a = int4)")
        db.faults.arm("wal.fsync", crash=True)
        with pytest.raises(SimulatedCrash):
            db.execute("append t(a = 1)")
        assert Database.recover(
            tmp_path / "state").relation_rows("t") == [(1,)]

    def test_crash_at_commit_loses_whole_transaction(self, tmp_path):
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        db.execute("append t(a = 1)")
        db.begin()
        db.execute("append t(a = 2)")
        db.execute("append t(a = 3)")
        db.faults.arm("txn.commit", crash=True)
        with pytest.raises(SimulatedCrash):
            db.commit()
        assert Database.recover(
            tmp_path / "state").relation_rows("t") == [(1,)]

    def test_committed_transaction_is_one_durable_record(self, tmp_path):
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        before = db.wal_info()["records"]
        db.begin()
        db.execute("append t(a = 1)")
        db.execute("append t(a = 2)")
        assert db.wal_info()["records"] == before   # nothing pre-commit
        db.commit()
        assert db.wal_info()["records"] == before + 1
        db.close()
        assert sorted(Database.recover(
            tmp_path / "state").relation_rows("t")) == [(1,), (2,)]

    def test_aborted_transaction_recovers_to_prefix(self, tmp_path):
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        db.execute("append t(a = 1)")
        db.begin()
        db.execute("append t(a = 2)")
        db.execute("replace t (a = 9) where t.a = 1")
        db.abort()
        db.close()
        assert Database.recover(
            tmp_path / "state").relation_rows("t") == [(1,)]

    def test_crash_in_rule_action_loses_transition(self, tmp_path):
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        db.execute("create log (tag = text)")
        db.execute('define rule r on append t '
                   'then append to log(tag = "hit")')
        db.execute("append t(a = 1)")
        db.faults.arm("rule.fire", crash=True)
        with pytest.raises(SimulatedCrash):
            db.execute("append t(a = 2)")
        recovered = Database.recover(tmp_path / "state")
        assert recovered.relation_rows("t") == [(1,)]
        assert recovered.relation_rows("log") == [("hit",)]

    def test_rule_generated_mutations_replay_without_refiring(
            self, tmp_path):
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        db.execute("create audit (n = int4)")
        db.execute("define rule cnt on append t "
                   "then append to audit(n = t.a)")
        for i in range(4):
            db.execute(f"append t(a = {i})")
        db.close()
        recovered = Database.recover(tmp_path / "state")
        # replay must not re-fire: exactly one audit row per append
        assert sorted(recovered.relation_rows("audit")) == \
            [(i,) for i in range(4)]
        assert recovered.firings == 0
        # and the network is live again: new appends do fire
        recovered.execute("append t(a = 99)")
        assert (99,) in recovered.relation_rows("audit")


class TestCheckpoint:
    def test_explicit_checkpoint_truncates_wal(self, tmp_path):
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        for i in range(5):
            db.execute(f"append t(a = {i})")
        assert db.wal_info()["records"] > 0
        db.checkpoint()
        info = db.wal_info()
        assert info["records"] == 0
        assert info["generation"] == 2
        assert db.stats.get("wal.checkpoints") == 1
        db.close()
        assert len(Database.recover(
            tmp_path / "state").relation_rows("t")) == 5

    def test_auto_checkpoint_on_threshold(self, tmp_path):
        db = make_db(tmp_path, checkpoint_every=4)
        db.execute("create t (a = int4)")
        for i in range(10):
            db.execute(f"append t(a = {i})")
        assert db.stats.get("wal.checkpoints") >= 2
        db.close()
        assert len(Database.recover(
            tmp_path / "state",
            checkpoint_every=4).relation_rows("t")) == 10

    def test_checkpoint_refused_inside_transaction(self, tmp_path):
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        db.begin()
        with pytest.raises(TransactionError):
            db.checkpoint()
        db.abort()

    def test_checkpoint_requires_durable_path(self):
        with pytest.raises(DurabilityError, match="durable path"):
            Database().checkpoint()

    def test_crash_during_checkpoint_rename_recovers_old_pair(
            self, tmp_path):
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        for i in range(3):
            db.execute(f"append t(a = {i})")
        db.faults.arm("checkpoint.rename", crash=True)
        with pytest.raises(SimulatedCrash):
            db.checkpoint()
        state = tmp_path / "state"
        assert (state / "checkpoint.arl.tmp").exists()
        assert (state / "wal.log.new").exists()
        recovered = Database.recover(state)
        assert sorted(recovered.relation_rows("t")) == \
            [(0,), (1,), (2,)]
        # orphans cleaned up
        assert not (state / "checkpoint.arl.tmp").exists()
        assert not (state / "wal.log.new").exists()

    def test_stale_wal_generation_discarded(self, tmp_path):
        # simulate a crash between the two checkpoint renames: new
        # checkpoint installed, old log still in place
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        db.execute("append t(a = 1)")
        db.close()
        state = tmp_path / "state"
        old_wal = (state / "wal.log").read_bytes()
        db2 = Database.recover(state)
        db2.execute("append t(a = 2)")
        db2.checkpoint()
        db2.close()
        (state / "wal.log").write_bytes(old_wal)    # stale generation 1
        recovered = Database.recover(state)
        assert sorted(recovered.relation_rows("t")) == [(1,), (2,)]

    def test_wal_generation_ahead_of_checkpoint_rejected(self, tmp_path):
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        db.checkpoint()
        db.close()
        state = tmp_path / "state"
        (state / "checkpoint.arl").write_text(
            "-- wal-generation: 1\ncreate t (a = int4)\n")
        with pytest.raises(WalCorruptError, match="ahead"):
            Database.recover(state)


class TestDurableLifecycle:
    def test_fresh_refuses_existing_state(self, tmp_path):
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        db.execute("append t(a = 1)")
        db.close()
        with pytest.raises(DurabilityError, match="recover"):
            Database(durable_path=tmp_path / "state")

    def test_recover_empty_directory_gives_empty_database(self, tmp_path):
        db = Database.recover(tmp_path / "nothing")
        assert list(db.catalog.relations()) == []
        db.execute("create t (a = int4)")
        db.execute("append t(a = 7)")
        db.close()
        assert Database.recover(
            tmp_path / "nothing").relation_rows("t") == [(7,)]

    def test_ddl_and_rule_lifecycle_replay(self, tmp_path):
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        db.execute("create log (tag = text)")
        db.execute("define index ti on t (a) using btree")
        db.execute('define rule r on append t '
                   'then append to log(tag = "x")')
        db.execute("deactivate rule r")
        db.execute("append t(a = 1)")       # rule inactive: no log row
        db.execute("activate rule r")
        db.execute("append t(a = 2)")       # fires
        db.execute("remove index ti")
        db.close()
        recovered = Database.recover(tmp_path / "state")
        assert sorted(recovered.relation_rows("t")) == [(1,), (2,)]
        assert recovered.relation_rows("log") == [("x",)]
        assert "r" in recovered.manager.active_rules()
        assert not list(recovered.catalog.indexes())
        recovered.execute("append t(a = 3)")
        assert len(recovered.relation_rows("log")) == 2

    def test_retrieve_into_is_durable(self, tmp_path):
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        db.execute("append t(a = 1)")
        db.execute("append t(a = 5)")
        db.execute("retrieve into big (t.a) where t.a > 2")
        db.close()
        recovered = Database.recover(tmp_path / "state")
        assert recovered.relation_rows("big") == [(5,)]

    def test_destroy_relation_replays(self, tmp_path):
        db = make_db(tmp_path)
        db.execute("create t (a = int4)")
        db.execute("append t(a = 1)")
        db.execute("destroy t")
        db.execute("create t (a = int4)")
        db.execute("append t(a = 2)")
        db.close()
        assert Database.recover(
            tmp_path / "state").relation_rows("t") == [(2,)]

    def test_wal_info_shape(self, tmp_path):
        assert Database().wal_info() is None
        db = make_db(tmp_path, fsync="never")
        info = db.wal_info()
        assert info["fsync"] == "never"
        assert info["degraded"] is None
        assert info["generation"] == 1
