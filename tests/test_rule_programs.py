"""Whole rule programs: production-system classics and DB maintenance
patterns built from ARL rules, run on every network implementation."""

import pytest

from repro import Database, RuleLoopError

NETWORKS = ["a-treat", "treat", "rete"]


@pytest.fixture(params=NETWORKS)
def db(request):
    return Database(network=request.param)


class TestTransitiveClosure:
    """The production-system classic: close a graph under reachability."""

    def setup_graph(self, db):
        db.execute("create edge (src = int4, dst = int4)")
        db.execute("create path (src = int4, dst = int4)")
        # base: every edge is a path
        db.execute("define rule base on append edge "
                   "then append to path(src = edge.src, dst = edge.dst) "
                   "where 1 = 1")
        # step: path ⋈ edge extends paths; the where-clause guard stops
        # re-derivation (no duplicate paths -> termination)
        db.execute("""
            define rule step if path.dst = edge.src
            then append to path(src = path.src, dst = edge.dst)
                 where 1 = 1
        """)
        # dedup: keep the path relation a set
        db.execute("""
            define rule dedup priority 10
            if a.src = b.src and a.dst = b.dst from a in path, b in path
            then delete a where a.src = b.src and a.dst = b.dst
        """)

    def test_chain(self, db):
        # Simpler, guard-free closure: insert edges of a chain and check
        # all reachable pairs are derived.
        db.execute("create edge (src = int4, dst = int4)")
        db.execute("create path (src = int4, dst = int4)")
        db.execute("define rule base on append edge "
                   "then append to path(src = edge.src, "
                   "dst = edge.dst)")
        db.execute("define rule step "
                   "if path.dst = edge.src "
                   "then append to path(src = path.src, dst = edge.dst)")
        for a, b in [(1, 2), (2, 3), (3, 4)]:
            db.execute(f"append edge(src = {a}, dst = {b})")
        got = set(db.relation_rows("path"))
        assert {(1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4)} <= got

    def test_cycle_hits_firing_bound(self):
        """A cyclic graph makes naive closure re-derive forever; the
        firing bound catches it (documenting the need for dedup)."""
        db = Database(max_firings=50)
        db.execute("create edge (src = int4, dst = int4)")
        db.execute("create path (src = int4, dst = int4)")
        db.execute("define rule base on append edge "
                   "then append to path(src = edge.src, dst = edge.dst)")
        db.execute("define rule step if path.dst = edge.src "
                   "then append to path(src = path.src, dst = edge.dst)")
        db.execute("append edge(src = 1, dst = 2)")
        with pytest.raises(RuleLoopError):
            db.execute("append edge(src = 2, dst = 1)")


class TestReferentialIntegrity:
    """Cascade delete and insert-time FK checks via rules."""

    def setup_ri(self, db):
        db.execute("create dept (dno = int4, name = text)")
        db.execute("create emp (name = text, dno = int4)")
        db.execute("create rejects (name = text)")
        # cascade: deleting a department deletes its employees
        db.execute("""
            define rule cascade on delete dept
            then delete emp where emp.dno = dept.dno
        """)
        # FK check: an employee appended with an unknown dno is removed
        # and logged (an anti-join via count aggregation is not needed:
        # the rule matches employees having NO matching dept by checking
        # after the fact with a guard rule pattern)
        db.execute("""
            define rule orphan priority 9
            if emp.dno = dept.dno and dept.name = "__never__"
            then delete emp
        """)

    def test_cascade_delete(self, db):
        self.setup_ri(db)
        db.execute('append dept(dno = 1, name = "Toy")')
        db.execute('append dept(dno = 2, name = "Sales")')
        db.execute('append emp(name = "a", dno = 1)')
        db.execute('append emp(name = "b", dno = 1)')
        db.execute('append emp(name = "c", dno = 2)')
        db.execute("delete dept where dept.dno = 1")
        assert db.relation_rows("emp") == [("c", 2)]

    def test_cascade_is_transitive_through_rules(self, db):
        self.setup_ri(db)
        db.execute("create audit (name = text)")
        db.execute("define rule audit_fired on delete emp "
                   "then append to audit(emp.name)")
        db.execute('append dept(dno = 1, name = "Toy")')
        db.execute('append emp(name = "a", dno = 1)')
        db.execute("delete dept")
        assert db.relation_rows("audit") == [("a",)]


class TestDerivedDataMaintenance:
    """Materialised aggregate maintained incrementally by rules."""

    def setup_counter(self, db):
        db.execute("create item (k = int4)")
        db.execute("create counter (n = int4)")
        db.execute("append counter(n = 0)")
        db.execute("define rule up on append item "
                   "then replace counter (n = counter.n + 1)")
        db.execute("define rule down on delete item "
                   "then replace counter (n = counter.n - 1)")

    def count(self, db):
        return db.relation_rows("counter")[0][0]

    def test_counter_tracks_inserts_and_deletes(self, db):
        self.setup_counter(db)
        for k in range(5):
            db.execute(f"append item(k = {k})")
        assert self.count(db) == 5
        db.execute("delete item where item.k = 0")
        db.execute("delete item where item.k = 1")
        assert self.count(db) == 3

    def test_set_oriented_firing_is_per_set_not_per_tuple(self, db):
        """The sharp edge of set-oriented semantics: a multi-tuple
        delete in ONE transition is ONE firing, and an action command
        that does not reference the rule's tuple variable runs once for
        the whole set — so this naive counter undercounts.  (The fix is
        to make the action range over the matched set, as the other
        tests do.)"""
        self.setup_counter(db)
        for k in range(5):
            db.execute(f"append item(k = {k})")
        db.execute("delete item where item.k < 2")   # 2 tuples, 1 firing
        assert self.count(db) == 4                    # decremented once
        assert db.firing_log[-1].match_count == 2

    def test_counter_matches_aggregate(self, db):
        self.setup_counter(db)
        for k in range(7):
            db.execute(f"append item(k = {k})")
        db.execute("delete item where item.k = 3")
        derived = self.count(db)
        actual = db.query("retrieve (n = count(item.all))").rows[0][0]
        assert derived == actual == 6

    def test_net_effect_in_blocks(self, db):
        self.setup_counter(db)
        # insert and delete within one block: net effect nothing, and
        # the set-oriented firing counts the block's net insertions
        db.execute("do "
                   "append item(k = 1) "
                   "append item(k = 2) "
                   "delete item where item.k = 1 "
                   "end")
        assert self.count(db) == 1


class TestStateMachineRules:
    """An order workflow driven entirely by replace-event rules."""

    def setup_workflow(self, db):
        db.execute("create orders (ono = int4, state = text)")
        db.execute("create history (ono = int4, frm = text, t = text)")
        db.execute("""
            define rule log_transition on replace orders(state)
            then append to history(ono = orders.ono,
                                   frm = previous orders.state,
                                   t = orders.state)
        """)
        # invalid transition: anything leaving "shipped" snaps back
        db.execute("""
            define rule frozen priority 9 on replace orders(state)
            if previous orders.state = "shipped"
            then replace orders (state = "shipped")
        """)

    def test_transitions_logged(self, db):
        self.setup_workflow(db)
        db.execute('append orders(ono = 1, state = "new")')
        db.execute('replace orders (state = "paid") where orders.ono = 1')
        db.execute('replace orders (state = "shipped") '
                   'where orders.ono = 1')
        assert db.relation_rows("history") == [
            (1, "new", "paid"), (1, "paid", "shipped")]

    def test_invalid_transition_reverted(self, db):
        self.setup_workflow(db)
        db.execute('append orders(ono = 1, state = "shipped")')
        db.execute('replace orders (state = "new") where orders.ono = 1')
        assert db.relation_rows("orders") == [(1, "shipped")]


class TestMutualRecursionWithPriorities:
    def test_ping_pong_bounded_by_guard(self, db):
        """Two rules feeding each other, terminated by a value guard."""
        db.execute("create ping (n = int4)")
        db.execute("create pong (n = int4)")
        db.execute("define rule p1 on append ping if ping.n < 5 "
                   "then append to pong(n = ping.n + 1)")
        db.execute("define rule p2 on append pong if pong.n < 5 "
                   "then append to ping(n = pong.n + 1)")
        db.execute("append ping(n = 0)")
        ping = sorted(db.relation_rows("ping"))
        pong = sorted(db.relation_rows("pong"))
        assert ping == [(0,), (2,), (4,)]
        assert pong == [(1,), (3,), (5,)]
