"""Unit and property tests for expression compilation and evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.errors import ExecutionError, SemanticError
from repro.lang import ast_nodes as ast
from repro.lang.expr import (
    Bindings, compile_expr, constant_value, is_true, previous_variables_of,
    variables_of)
from repro.lang.parser import parse_command
from repro.lang.semantic import SemanticAnalyzer


@pytest.fixture
def env():
    catalog = Catalog()
    catalog.create_relation("emp", Schema.of(
        name="text", age="int", sal="float", dno="int"))
    catalog.create_relation("dept", Schema.of(dno="int", name="text"))
    return catalog, SemanticAnalyzer(catalog)


def compiled(env, text, command="retrieve (emp.name) where {}"):
    catalog, analyzer = env
    cmd = parse_command(command.format(text))
    analyzer.analyze(cmd)
    return compile_expr(cmd.where)


def bindings(**kwargs):
    return Bindings(current=kwargs)


ANN = ("Ann", 30, 50000.0, 1)
BOB = ("Bob", 40, 60000.0, 2)


class TestEvaluation:
    def test_comparison(self, env):
        fn = compiled(env, "emp.age > 35")
        assert fn(bindings(emp=ANN)) is False
        assert fn(bindings(emp=BOB)) is True

    def test_equality_string(self, env):
        fn = compiled(env, 'emp.name = "Ann"')
        assert fn(bindings(emp=ANN)) is True
        assert fn(bindings(emp=BOB)) is False

    def test_arithmetic(self, env):
        fn = compiled(env, "emp.sal * 2 + 1000 > 100000")
        assert fn(bindings(emp=ANN)) is True   # 101000 > 100000

    def test_and_or_not(self, env):
        fn = compiled(env, 'emp.age > 35 and not emp.name = "Zed" '
                           'or emp.dno = 99')
        assert fn(bindings(emp=BOB)) is True
        assert fn(bindings(emp=ANN)) is False

    def test_join_predicate(self, env):
        fn = compiled(env, "emp.dno = dept.dno")
        assert fn(Bindings({"emp": ANN, "dept": (1, "Toy")})) is True
        assert fn(Bindings({"emp": ANN, "dept": (2, "Sales")})) is False

    def test_unary_minus(self, env):
        fn = compiled(env, "emp.age = -(-30)")
        assert fn(bindings(emp=ANN)) is True

    def test_division(self, env):
        fn = compiled(env, "emp.sal / 2 = 25000")
        assert fn(bindings(emp=ANN)) is True

    def test_integer_division_stays_exact(self, env):
        fn = compiled(env, "emp.age / 2 = 15")
        assert fn(bindings(emp=ANN)) is True

    def test_division_by_zero(self, env):
        fn = compiled(env, "emp.age / 0 = 1")
        with pytest.raises(ExecutionError):
            fn(bindings(emp=ANN))

    def test_previous_reference(self, env):
        catalog, analyzer = env
        cmd = parse_command(
            "define rule r if emp.sal > 1.1 * previous emp.sal "
            "then delete emp")
        analyzer.analyze(cmd)
        fn = compile_expr(cmd.condition)
        b = Bindings(current={"emp": ("Ann", 30, 60000.0, 1)},
                     previous={"emp": ("Ann", 30, 50000.0, 1)})
        assert fn(b) is True
        b2 = Bindings(current={"emp": ("Ann", 30, 54000.0, 1)},
                      previous={"emp": ("Ann", 30, 50000.0, 1)})
        assert fn(b2) is False

    def test_unanalyzed_attr_ref_rejected(self):
        with pytest.raises(SemanticError):
            compile_expr(ast.AttrRef("emp", "sal"))

    def test_new_call_always_true(self):
        fn = compile_expr(ast.NewCall("emp"))
        assert fn(Bindings()) is True


class TestNullSemantics:
    def test_comparison_with_null_is_unknown(self, env):
        fn = compiled(env, "emp.age > 35")
        assert fn(bindings(emp=("Ann", None, 1.0, 1))) is None

    def test_arithmetic_with_null_is_null(self, env):
        fn = compiled(env, "emp.age + 1 > 0")
        assert fn(bindings(emp=("Ann", None, 1.0, 1))) is None

    def test_kleene_and(self, env):
        fn = compiled(env, "emp.age > 35 and emp.dno = 1")
        # False and unknown -> False
        assert fn(bindings(emp=("A", 30, 1.0, None))) is False
        # unknown and True -> unknown
        assert fn(bindings(emp=("A", None, 1.0, 1))) is None

    def test_kleene_or(self, env):
        fn = compiled(env, "emp.age > 35 or emp.dno = 1")
        # True or unknown -> True
        assert fn(bindings(emp=("A", 40, 1.0, None))) is True
        # unknown or False -> unknown
        assert fn(bindings(emp=("A", None, 1.0, 2))) is None

    def test_not_unknown(self, env):
        fn = compiled(env, "not emp.age > 35")
        assert fn(bindings(emp=("A", None, 1.0, 1))) is None

    def test_is_true(self):
        assert is_true(True)
        assert not is_true(None)
        assert not is_true(False)


class TestHelpers:
    def test_variables_of(self, env):
        catalog, analyzer = env
        cmd = parse_command("retrieve (emp.name) "
                            "where emp.dno = dept.dno and emp.age > 1")
        analyzer.analyze(cmd)
        assert variables_of(cmd.where) == {"emp", "dept"}

    def test_previous_variables_of(self, env):
        catalog, analyzer = env
        cmd = parse_command("define rule r "
                            "if emp.sal > previous emp.sal "
                            "and emp.dno = dept.dno then delete emp")
        analyzer.analyze(cmd)
        assert previous_variables_of(cmd.condition) == {"emp"}
        assert variables_of(cmd.condition) == {"emp", "dept"}

    def test_constant_value(self):
        expr = parse_command("delete emp where emp.a = 1.1 * 30000").where
        assert constant_value(expr.right) == pytest.approx(33000.0)

    def test_constant_value_rejects_variables(self):
        expr = parse_command("delete emp where emp.a = 1").where
        with pytest.raises(SemanticError):
            constant_value(expr.left)


# ----------------------------------------------------------------------
# property: compiled evaluation == direct python evaluation
# ----------------------------------------------------------------------

_num = st.one_of(st.integers(-100, 100),
                 st.floats(-100, 100, allow_nan=False))


@st.composite
def arith_exprs(draw, depth=0):
    """Random arithmetic/comparison trees over emp.age and constants."""
    if depth > 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return ast.Const(draw(_num)), lambda age: None
        return ast.AttrRef("emp", "age", position=1), lambda age: age
    op = draw(st.sampled_from(["+", "-", "*"]))
    left, _ = draw(arith_exprs(depth=depth + 1))
    right, _ = draw(arith_exprs(depth=depth + 1))
    return ast.BinOp(op, left, right), None


@given(arith_exprs(), st.integers(-50, 50))
def test_compiled_matches_direct(expr_and_fn, age):
    expr, _ = expr_and_fn
    fn = compile_expr(expr)
    result = fn(Bindings(current={"emp": ("X", age)}))

    def direct(node):
        if isinstance(node, ast.Const):
            return node.value
        if isinstance(node, ast.AttrRef):
            return age
        ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
               "*": lambda a, b: a * b}
        return ops[node.op](direct(node.left), direct(node.right))

    assert result == direct(expr)
