"""Executor tests: DML semantics end to end (no rule system), plus the
optimizer-vs-naive-evaluation equivalence property."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExecutionError
from repro.lang.expr import Bindings, compile_expr, is_true
from repro.lang.parser import parse_command
from tests.helpers import paper_engine


@pytest.fixture
def engine():
    return paper_engine()


class TestRetrieve:
    def test_selection(self, engine):
        result = engine.run("retrieve (emp.name) where emp.sal > 60000")
        assert len(result) == 4   # sal = 62000..68000 -> emp21..emp24
        assert set(result.column("name")) == {
            "emp21", "emp22", "emp23", "emp24"}

    def test_projection_expressions(self, engine):
        result = engine.run(
            "retrieve (emp.name, double = emp.sal * 2) "
            'where emp.name = "emp00"')
        assert result.rows == [("emp00", 40000.0)]
        assert result.columns == ("name", "double")

    def test_join(self, engine):
        result = engine.run(
            'retrieve (emp.name) where emp.dno = dept.dno and '
            'dept.name = "Toy"')
        # dno=1 employees: i % 7 == 0 -> i in 0,7,14,21
        assert set(result.column("name")) == {
            "emp00", "emp07", "emp14", "emp21"}

    def test_three_way_join(self, engine):
        result = engine.run(
            'retrieve (emp.name) where emp.dno = dept.dno and '
            'emp.jno = job.jno and dept.name = "Sales" and '
            'job.title = "Clerk"')
        # dno=2: i%7==1 -> 1,8,15,22 ; jno=1: i%5==0 -> 0,5,10,15,20
        assert result.column("name") == ["emp15"]

    def test_self_join(self, engine):
        result = engine.run(
            "retrieve (a.name, b.name) from a in emp, b in emp "
            'where a.dno = b.dno and a.name != b.name and '
            'a.jno = 1 and b.jno = 2')
        assert all(a != b for a, b in result.rows)

    def test_retrieve_all(self, engine):
        result = engine.run('retrieve (dept.all) where dept.dno = 1')
        assert result.rows == [(1, "Toy", "A")]
        assert result.columns == ("dno", "name", "building")

    def test_retrieve_into(self, engine):
        engine.run("retrieve into rich (emp.name, emp.sal) "
                   "where emp.sal > 60000")
        result = engine.run("retrieve (rich.name)")
        assert len(result) == 4
        assert engine.catalog.relation("rich").schema.names() == (
            "name", "sal")

    def test_empty_result(self, engine):
        result = engine.run("retrieve (emp.name) where emp.sal > 10000000")
        assert result.rows == []

    def test_cartesian(self, engine):
        result = engine.run("retrieve (dept.name, job.title)")
        assert len(result) == 7 * 5

    def test_as_dicts_and_str(self, engine):
        result = engine.run('retrieve (dept.name) where dept.dno = 1')
        assert result.as_dicts() == [{"name": "Toy"}]
        assert "Toy" in str(result)

    def test_column_missing(self, engine):
        result = engine.run('retrieve (dept.name) where dept.dno = 1')
        with pytest.raises(ExecutionError):
            result.column("bogus")


class TestAppend:
    def test_named(self, engine):
        engine.run('append emp(name="new", age=30, sal=1000, dno=1, '
                   'jno=1)')
        assert len(engine.catalog.relation("emp")) == 26

    def test_named_partial_defaults_none(self, engine):
        engine.run('append emp(name="partial")')
        result = engine.run(
            'retrieve (emp.name, emp.age) where emp.name = "partial"')
        assert result.rows == [("partial", None)]

    def test_positional(self, engine):
        engine.run('append dept(9, "Lab", "D")')
        result = engine.run("retrieve (dept.name) where dept.dno = 9")
        assert result.rows == [("Lab",)]

    def test_append_from_query(self, engine):
        engine.run("create watch (name = text)")
        result = engine.run(
            "append watch(name = emp.name) where emp.sal > 60000")
        assert result.count == 4
        assert len(engine.catalog.relation("watch")) == 4

    def test_append_join_source(self, engine):
        engine.run("create pairs (ename = text, dname = text)")
        engine.run("append pairs(ename = emp.name, dname = dept.name) "
                   'where emp.dno = dept.dno and dept.name = "Toy"')
        assert len(engine.catalog.relation("pairs")) == 4


class TestDelete:
    def test_delete_all(self, engine):
        result = engine.run("delete emp")
        assert result.count == 25
        assert len(engine.catalog.relation("emp")) == 0

    def test_delete_where(self, engine):
        result = engine.run("delete emp where emp.sal > 60000")
        assert result.count == 4
        assert len(engine.catalog.relation("emp")) == 21

    def test_delete_with_join(self, engine):
        result = engine.run(
            'delete emp where emp.dno = dept.dno and dept.name = "Toy"')
        assert result.count == 4

    def test_delete_via_from_var(self, engine):
        result = engine.run("delete e from e in emp where e.age >= 40")
        assert result.count == 5   # ages are 20 + i for i in 0..24

    def test_delete_join_duplicates_deduped(self, engine):
        # each emp joins one dept row; make a join that duplicates by
        # joining to job on an always-true-ish predicate
        result = engine.run(
            "delete emp where emp.sal > 66000 and job.paygrade > 0")
        assert result.count == 1   # emp24 counted once despite 5 job rows


class TestReplace:
    def test_replace_constant(self, engine):
        result = engine.run("replace emp (sal = 1) where emp.sal > 60000")
        assert result.count == 4
        check = engine.run("retrieve (emp.name) where emp.sal = 1")
        assert len(check) == 4

    def test_replace_expression_uses_old_values(self, engine):
        engine.run("replace emp (sal = emp.sal + 1000)")
        result = engine.run("retrieve (emp.sal) "
                            'where emp.name = "emp00"')
        assert result.rows == [(21000.0,)]

    def test_halloween_protection(self, engine):
        # a raise that re-qualifies rows must apply exactly once per row
        engine.run("replace emp (sal = emp.sal * 2) where emp.sal < 70000")
        result = engine.run("retrieve (emp.sal) "
                            'where emp.name = "emp00"')
        assert result.rows == [(40000.0,)]

    def test_replace_with_join(self, engine):
        result = engine.run(
            "replace emp (sal = 0) where emp.dno = dept.dno and "
            'dept.name = "Sales"')
        assert result.count == 4
        check = engine.run("retrieve (emp.name) where emp.sal = 0")
        assert len(check) == 4

    def test_replace_preserves_tids(self, engine):
        emp = engine.catalog.relation("emp")
        tids_before = [s.tid for s in emp.scan()]
        engine.run("replace emp (age = emp.age + 1)")
        assert [s.tid for s in emp.scan()] == tids_before

    def test_replace_multiple_attributes(self, engine):
        engine.run('replace emp (age = 99, name = "old") '
                   "where emp.sal >= 66000")
        result = engine.run("retrieve (emp.name) where emp.age = 99")
        assert result.column("name") == ["old", "old"]


class TestIndexMaintenanceThroughDml:
    def test_index_consistent_after_mixed_dml(self, engine):
        engine.run("define index empsal on emp (sal) using btree")
        engine.run("replace emp (sal = emp.sal + 500) "
                   "where emp.sal < 30000")
        engine.run("delete emp where emp.sal > 60000")
        engine.run('append emp(name="x", age=1, sal=61000, dno=1, jno=1)')
        result = engine.run("retrieve (emp.name) where emp.sal > 60000")
        assert result.column("name") == ["x"]


# ----------------------------------------------------------------------
# property: optimized plans == naive evaluation
# ----------------------------------------------------------------------

def naive_join_rows(engine, where_text, var_rels):
    """Reference evaluation: full cartesian product + predicate."""
    cmd = engine.analyzer.analyze(parse_command(
        "retrieve (" + ", ".join(f"{v}.all" for v in sorted(var_rels))
        + ") where " + where_text))
    predicate = compile_expr(cmd.where)
    relations = {v: list(engine.catalog.relation(r).scan())
                 for v, r in var_rels.items()}
    names = sorted(var_rels)
    rows = []
    for combo in itertools.product(*(relations[v] for v in names)):
        bound = Bindings({v: s.values for v, s in zip(names, combo)})
        if is_true(predicate(bound)):
            rows.append(tuple(val for s in combo for val in s.values))
    return sorted(rows)


_preds = st.sampled_from([
    "emp.dno = dept.dno",
    "emp.dno = dept.dno and emp.sal > 30000",
    'emp.dno = dept.dno and dept.name != "Toy"',
    "emp.dno = dept.dno and emp.jno = job.jno",
    "emp.dno = dept.dno and emp.jno = job.jno and job.paygrade > 2",
    "emp.sal > 40000 and emp.age < 40",
    "emp.dno = dept.dno or emp.jno = job.jno",
    "emp.sal / 2 > dept.dno * 1000",
])


@given(_preds, st.booleans(), st.booleans())
def test_plans_match_naive_evaluation(where_text, index_sal, index_dno):
    engine = paper_engine()
    if index_sal:
        engine.run("define index isal on emp (sal) using btree")
    if index_dno:
        engine.run("define index idno on emp (dno) using hash")
    vars_used = {v for v in ("emp", "dept", "job") if v in where_text}
    var_rels = {v: v for v in vars_used}
    query = ("retrieve ("
             + ", ".join(f"{v}.all" for v in sorted(vars_used))
             + ") where " + where_text)
    result = engine.run(query)
    assert sorted(result.rows) == naive_join_rows(engine, where_text,
                                                  var_rels)
