"""Paper-fidelity structural tests: Figures 3–8 reproduced exactly.

These tests pin the *structures* the paper draws, not just behavior:
the TREAT network of Figure 3, the A-TREAT network of Figure 4 with its
virtual middle node, the modified action of Figure 7, and a Figure-8
style plan for an action command.
"""

from repro import Database
from repro.core.action_planner import modified_action_text
from repro.core.introspect import describe_rule
from repro.planner.plans import explain, plan_operators


def build_salesclerk_db(virtual_policy):
    db = Database(virtual_policy=virtual_policy)
    db.execute_script("""
        create emp (name = text, age = int4, sal = float8,
                    dno = int4, jno = int4)
        create dept (dno = int4, name = text, building = text)
        create job (jno = int4, title = text, paygrade = int4)
    """)
    # populate so 'sal > 30000' is unselective (most emps match) while
    # dept/job selections are selective — the Figure 4 setup
    for d in range(8):
        db.execute(f'append dept(dno={d}, name="d{d}")')
    db.execute('append dept(dno=99, name="Sales")')
    for j in range(8):
        db.execute(f'append job(jno={j}, title="j{j}", paygrade={j})')
    db.execute('append job(jno=99, title="Clerk", paygrade=1)')
    for i in range(40):
        db.execute(f'append emp(name="e{i}", age={20 + i}, '
                   f'sal={25000 + 1000 * i}, dno={i % 8}, jno={i % 8})')
    db._rules_suspended = True
    db.execute('define rule SalesClerkRule '
               'if emp.sal > 30000 and emp.dno = dept.dno '
               'and dept.name = "Sales" and emp.jno = job.jno '
               'and job.title = "Clerk" '
               'then delete emp')
    return db


class TestFigure3TreatNetwork:
    """Figure 3: the plain TREAT network — three stored α-memories."""

    def test_structure(self):
        db = build_salesclerk_db("never")
        for var in ("emp", "dept", "job"):
            memory = db.network.memory("SalesClerkRule", var)
            assert not memory.is_virtual
            assert memory.kind_name == "stored-α"
        # α-memory contents mirror the selection conditions
        assert len(db.network.memory("SalesClerkRule", "dept")) == 1
        assert len(db.network.memory("SalesClerkRule", "job")) == 1
        assert len(db.network.memory("SalesClerkRule", "emp")) == 34

    def test_selection_anchors(self):
        db = build_salesclerk_db("never")
        rule = db.network.rules["SalesClerkRule"]
        assert rule.specs["emp"].analysis.anchor.attr == "sal"
        assert rule.specs["dept"].analysis.anchor.attr == "name"
        assert rule.specs["job"].analysis.anchor.attr == "title"
        # joins exactly as drawn: dept.dno = emp.dno and emp.jno = job.jno
        joins = {frozenset(j.variables) for j in rule.joins}
        assert joins == {frozenset({"emp", "dept"}),
                         frozenset({"emp", "job"})}

    def test_figure5_memory_count(self):
        """Three tuple variables -> three α-memories, one P-node."""
        db = build_salesclerk_db("never")
        assert len([1 for (name, _) in db.network._memories
                    if name == "SalesClerkRule"]) == 3


class TestFigure4ATreatNetwork:
    """Figure 4: identical, except alpha2 (emp, sal>30000) is virtual —
    'if the predicate sal>30000 is not very selective, then making
    alpha2 be virtual may be a reasonable choice'."""

    def test_auto_policy_reproduces_figure4(self):
        db = build_salesclerk_db("auto")
        assert db.network.memory("SalesClerkRule", "emp").is_virtual
        assert not db.network.memory("SalesClerkRule", "dept").is_virtual
        assert not db.network.memory("SalesClerkRule", "job").is_virtual

    def test_storage_saved_is_the_emp_fraction(self):
        stored = build_salesclerk_db("never")
        atreat = build_salesclerk_db("auto")
        saved = (stored.network.memory_entry_count("SalesClerkRule")
                 - atreat.network.memory_entry_count("SalesClerkRule"))
        assert saved == 34       # exactly the emp α-memory's contents

    def test_same_network_same_matches(self):
        stored = build_salesclerk_db("never")
        atreat = build_salesclerk_db("auto")
        stored.execute('append emp(name="x", age=1, sal=50000, dno=99, '
                       'jno=99)')
        atreat.execute('append emp(name="x", age=1, sal=50000, dno=99, '
                       'jno=99)')
        assert len(stored.network.pnode("SalesClerkRule")) == \
            len(atreat.network.pnode("SalesClerkRule")) == 1


class TestFigure7QueryModification:
    def test_modified_text(self):
        db = Database()
        db.execute_script("""
            create emp (name = text, sal = float8, dno = int4,
                        jno = int4)
            create dept (dno = int4, name = text)
            create job (jno = int4, title = text)
            create salarywatch (name = text, sal = float8, dno = int4,
                                jno = int4)
        """)
        db.execute('define rule SalesClerkRule2 '
                   'if emp.sal > 30000 and emp.jno = job.jno '
                   'and job.title = "Clerk" '
                   'then do '
                   'append to salarywatch(emp.name, emp.sal, emp.dno, '
                   'emp.jno) '
                   'replace emp (sal = 30000) where emp.dno = dept.dno '
                   'and dept.name = "Sales" '
                   'replace emp (sal = 25000) where emp.dno = dept.dno '
                   'and dept.name != "Sales" '
                   'end')
        text = modified_action_text(
            db.manager.rule("SalesClerkRule2").compiled)
        # Figure 7, line for line (modulo our target-list rendering):
        assert "append to salarywatch (P.emp.name" in text
        assert ("replace' P.emp (sal = 30000) where P.emp.dno = dept.dno "
                'and dept.name = "Sales"') in text
        assert ("replace' P.emp (sal = 25000) where P.emp.dno = dept.dno "
                'and dept.name != "Sales"') in text

    def test_describe_rule_includes_both_views(self):
        db = Database()
        db.execute("create t (a = int4)")
        db.execute("define rule r if t.a > 1 then delete t")
        text = describe_rule(db.manager, "r")
        assert "if:       t.a > 1" in text
        assert "delete' P.t" in text


class TestFigure8ActionPlan:
    def test_action_plan_has_pnodescan_and_dept_access(self):
        """Figure 8: the replace' command plans as a join of a PnodeScan
        with an access path on dept."""
        db = Database()
        db.execute_script("""
            create emp (name = text, sal = float8, dno = int4)
            create dept (dno = int4, name = text)
        """)
        for d in range(30):
            db.execute(f'append dept(dno={d}, name="d{d}")')
        db.execute('append dept(dno=99, name="Sales")')
        db.execute("define index deptdno on dept (dno) using hash")
        db.execute('define rule cap if emp.sal > 30000 '
                   'then replace emp (sal = 30000) '
                   'where emp.dno = dept.dno and dept.name = "Sales"')
        db._rules_suspended = True
        db.execute('append emp(name="x", sal=99000, dno=99)')
        rule = db.manager.rule("cap").compiled
        matches = db.manager.consume_matches(rule)
        plans = db.action_planner.plan_firing(rule, matches)
        ops = plan_operators(plans[0].planned.plan)
        assert "PnodeScan" in ops
        # the dept side is an index probe or scan joined to the P-node
        assert any(op in ops for op in
                   ("IndexProbe", "IndexScan", "SeqScan"))
        assert any(op in ops for op in
                   ("NestedLoopJoin", "HashJoin", "SortMergeJoin"))
        text = explain(plans[0].planned.plan)
        assert "P(cap)" in text
