"""FaultRegistry semantics: arming, counting, crash vs error modes."""

import pytest

from repro.faults import POINTS, FaultRegistry, SimulatedCrash
from repro.observe import EngineStats


class TestArming:
    def test_unknown_point_rejected(self):
        registry = FaultRegistry()
        with pytest.raises(ValueError, match="unknown fault point"):
            registry.arm("wal.bogus")

    def test_torn_requires_wal_append_and_crash(self):
        registry = FaultRegistry()
        with pytest.raises(ValueError, match="torn"):
            registry.arm("wal.fsync", torn=0.5, crash=True)
        with pytest.raises(ValueError, match="crash"):
            registry.arm("wal.append", torn=0.5)

    def test_disarm_single_and_all(self):
        registry = FaultRegistry()
        registry.arm("wal.append")
        registry.arm("wal.fsync")
        assert registry.armed("wal.append")
        registry.disarm("wal.append")
        assert not registry.armed("wal.append")
        assert registry.armed("wal.fsync")
        registry.disarm()
        assert not registry.armed("wal.fsync")

    def test_every_declared_point_arms(self):
        registry = FaultRegistry()
        for point in POINTS:
            registry.arm(point)
            assert registry.armed(point)


class TestHitting:
    def test_unarmed_hit_is_noop(self):
        FaultRegistry().hit("wal.append")   # nothing raised

    def test_default_error_is_oserror(self):
        registry = FaultRegistry()
        registry.arm("wal.append")
        with pytest.raises(OSError, match="injected fault"):
            registry.hit("wal.append")

    def test_custom_error_instance(self):
        registry = FaultRegistry()
        registry.arm("wal.fsync", error=OSError(28, "No space left"))
        with pytest.raises(OSError, match="No space left"):
            registry.hit("wal.fsync")

    def test_times_bounds_injection(self):
        registry = FaultRegistry()
        registry.arm("wal.append", times=2)
        for _ in range(2):
            with pytest.raises(OSError):
                registry.hit("wal.append")
        registry.hit("wal.append")          # exhausted: clean again
        assert registry.injected_count("wal.append") == 2

    def test_after_skips_leading_hits(self):
        registry = FaultRegistry()
        registry.arm("txn.commit", after=2)
        registry.hit("txn.commit")
        registry.hit("txn.commit")
        with pytest.raises(OSError):
            registry.hit("txn.commit")

    def test_crash_raises_base_exception(self):
        registry = FaultRegistry()
        registry.arm("rule.fire", crash=True)
        with pytest.raises(SimulatedCrash):
            registry.hit("rule.fire")
        # a crash point stays lethal — the "process" never comes back
        with pytest.raises(SimulatedCrash):
            registry.hit("rule.fire")
        assert not issubclass(SimulatedCrash, Exception)
        assert not issubclass(SimulatedCrash, OSError)

    def test_stats_counter_bumped(self):
        stats = EngineStats()
        registry = FaultRegistry(stats=stats)
        registry.arm("wal.append", times=3)
        for _ in range(3):
            with pytest.raises(OSError):
                registry.hit("wal.append")
        assert stats.get("faults.injected") == 3

    def test_injected_count_totals(self):
        registry = FaultRegistry()
        registry.arm("wal.append", times=1)
        registry.arm("wal.fsync", times=1)
        for point in ("wal.append", "wal.fsync"):
            with pytest.raises(OSError):
                registry.hit(point)
        assert registry.injected_count() == 2


class TestTornFraction:
    def test_none_when_unarmed_or_plain_crash(self):
        registry = FaultRegistry()
        assert registry.torn_fraction() is None
        registry.arm("wal.append", crash=True)
        assert registry.torn_fraction() is None

    def test_fraction_respects_after(self):
        registry = FaultRegistry()
        registry.arm("wal.append", crash=True, torn=0.25, after=1)
        assert registry.torn_fraction() is None   # first hit passes
        registry.hit("wal.append")
        assert registry.torn_fraction() == 0.25
