"""Unit tests for the optimizer: access paths, join methods, join order."""

import pytest

from repro.planner.plans import explain, plan_operators
from tests.helpers import paper_engine


@pytest.fixture
def engine():
    return paper_engine()


class TestAccessPaths:
    def test_seq_scan_without_index(self, engine):
        planned = engine.plan("retrieve (emp.name) where emp.sal > 30000")
        assert plan_operators(planned.plan) == ["SeqScan"]

    def test_btree_range_scan(self, engine):
        engine.run("define index empsal on emp (sal) using btree")
        planned = engine.plan("retrieve (emp.name) where emp.sal > 60000")
        assert "IndexScan" in plan_operators(planned.plan)
        assert "empsal" in explain(planned.plan)

    def test_btree_point_scan(self, engine):
        engine.run("define index empdno on emp (dno) using btree")
        planned = engine.plan("retrieve (emp.name) where emp.dno = 3")
        assert "IndexScan" in plan_operators(planned.plan)

    def test_hash_point_scan(self, engine):
        engine.run("define index empdno on emp (dno) using hash")
        planned = engine.plan("retrieve (emp.name) where emp.dno = 3")
        assert "IndexScan" in plan_operators(planned.plan)

    def test_hash_index_unused_for_range(self, engine):
        engine.run("define index empsal on emp (sal) using hash")
        planned = engine.plan("retrieve (emp.name) where emp.sal > 60000")
        assert plan_operators(planned.plan) == ["SeqScan"]

    def test_residual_predicate_kept(self, engine):
        engine.run("define index empsal on emp (sal) using btree")
        planned = engine.plan(
            'retrieve (emp.name) where emp.sal > 60000 and '
            'emp.name != "emp03"')
        text = explain(planned.plan)
        assert "IndexScan" in text
        assert "!=" in text

    def test_unsatisfiable_predicate_plans_empty(self, engine):
        planned = engine.plan(
            "retrieve (emp.name) where emp.sal > 10 and emp.sal < 5")
        assert plan_operators(planned.plan) == ["EmptyPlan"]

    def test_false_constant_plans_empty(self, engine):
        planned = engine.plan("retrieve (emp.name) where 1 = 2")
        assert plan_operators(planned.plan) == ["EmptyPlan"]

    def test_no_variable_command_plans_singleton(self, engine):
        engine.run("create t (a = int4)")
        planned = engine.plan("append t(a = 1)")
        assert plan_operators(planned.plan) == ["SingletonPlan"]


class TestJoinMethods:
    def test_two_way_join_produces_join_operator(self, engine):
        planned = engine.plan(
            "retrieve (emp.name, dept.name) where emp.dno = dept.dno")
        ops = plan_operators(planned.plan)
        assert any(op in ops for op in
                   ("HashJoin", "SortMergeJoin", "NestedLoopJoin"))

    def test_index_nested_loop_preferred_with_index(self, engine):
        engine.run("define index empdno on emp (dno) using hash")
        planned = engine.plan(
            'retrieve (emp.name) where emp.dno = dept.dno and '
            'dept.name = "Toy"')
        ops = plan_operators(planned.plan)
        assert "IndexProbe" in ops

    def test_three_way_join(self, engine):
        planned = engine.plan(
            'retrieve (emp.name) where emp.dno = dept.dno and '
            'emp.jno = job.jno and dept.name = "Sales" and '
            'job.title = "Clerk"')
        ops = plan_operators(planned.plan)
        assert ops.count("SeqScan") + ops.count("IndexScan") \
            + ops.count("IndexProbe") == 3

    def test_cross_join_without_predicate(self, engine):
        planned = engine.plan("retrieve (dept.name, job.title)")
        assert "NestedLoopJoin" in plan_operators(planned.plan)

    def test_non_equi_join_uses_nested_loop(self, engine):
        planned = engine.plan(
            "retrieve (a.name, b.name) from a in emp, b in emp "
            "where a.sal < b.sal")
        ops = plan_operators(planned.plan)
        assert "NestedLoopJoin" in ops
        assert "HashJoin" not in ops

    def test_smaller_input_drives_join(self, engine):
        # dept (7 rows) should be on the build/outer side against
        # emp (25 rows) in a cost-based order
        planned = engine.plan(
            "retrieve (emp.name, dept.name) where emp.dno = dept.dno")
        text = explain(planned.plan)
        # whichever method is chosen, the plan must mention both scans
        assert "emp" in text and "dept" in text


class TestSelfJoin:
    def test_self_join_via_from_list(self, engine):
        planned = engine.plan(
            "retrieve (a.name, b.name) from a in emp, b in emp "
            "where a.dno = b.dno and a.jno = 1 and b.jno = 2")
        ops = plan_operators(planned.plan)
        assert ops.count("SeqScan") == 2 or "IndexProbe" in ops


class TestExplain:
    def test_explain_is_indented_tree(self, engine):
        planned = engine.plan(
            "retrieve (emp.name, dept.name) where emp.dno = dept.dno")
        lines = explain(planned.plan).splitlines()
        assert len(lines) >= 3
        assert lines[0][0] != " "
        assert any(line.startswith("  ") for line in lines[1:])
