"""Unit tests for the tokenizer."""

import pytest

from repro.errors import ParseError
from repro.lang.lexer import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestLexer:
    def test_empty(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "eof"

    def test_keywords_case_insensitive(self):
        assert values("APPEND Append append") == ["append"] * 3
        assert kinds("retrieve") == ["keyword"]

    def test_identifiers_case_sensitive(self):
        tokens = tokenize("Emp emp")
        assert tokens[0].value == "Emp"
        assert tokens[1].value == "emp"

    def test_numbers(self):
        assert values("42") == [42]
        assert values("3.5") == [3.5]
        assert values("1.5e3") == [1500.0]
        assert values("2E-2") == [0.02]
        assert isinstance(values("42")[0], int)
        assert isinstance(values("42.0")[0], float)

    def test_strings(self):
        assert values('"Bob"') == ["Bob"]
        assert values(r'"a\"b"') == ['a"b']
        assert values(r'"line\n"') == ["line\n"]

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"oops')

    def test_bad_escape(self):
        with pytest.raises(ParseError):
            tokenize(r'"\x"')

    def test_operators(self):
        assert values("< <= > >= = != + - * / ( ) , .") == [
            "<", "<=", ">", ">=", "=", "!=", "+", "-", "*", "/",
            "(", ")", ",", "."]

    def test_maximal_munch(self):
        assert values("a<=b") == ["a", "<=", "b"]
        assert values("a<b") == ["a", "<", "b"]

    def test_comments(self):
        assert values("a -- comment\n b") == ["a", "b"]
        assert values("a # comment\n b") == ["a", "b"]

    def test_semicolons_are_trivia(self):
        assert values("a; b") == ["a", "b"]

    def test_dotted_reference(self):
        assert values("emp.sal") == ["emp", ".", "sal"]
        assert kinds("emp.sal") == ["ident", "op", "ident"]

    def test_positions(self):
        tokens = tokenize("ab\n cd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 2)

    def test_unexpected_char(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("a @ b")
        assert "line 1" in str(excinfo.value)

    def test_rule_text_from_paper(self):
        text = 'define rule NoBobs on append emp if emp.name = "Bob" ' \
               'then delete emp'
        words = values(text)
        assert "define" in words
        assert "rule" in words
        assert "NoBobs" in words
        assert "Bob" in words
