"""The worst-case-optimal multiway join step (leapfrog triejoin).

Covers the layer stack bottom-up: the leapfrog intersection primitive,
the sorted iterator views maintained on α-memory join indexes, join-
class / cyclicity analysis of the equi-join graph, the planner's
algorithm decision (mode resolution, eligibility gates, fallback
counters), introspection output, and end-to-end equivalence of the
multiway step with the pairwise chain on concrete triangle workloads —
including deletes under Rete's β-less multiway rules.
"""

import pytest

from repro import Database
from repro.core.introspect import describe_join_plan
from repro.core.join_planner import JOIN_MODES, resolve_join_mode
from repro.core.leapfrog import (
    build_join_classes, equijoin_graph_is_cyclic, leapfrog_intersection)
from repro.errors import RuleError

TRIANGLE = (
    "define rule triangle "
    "if r.a = s.b and s.c = t.c and t.a = r.a "
    "from r in r, s in s, t in t "
    'then append to log(tag = "tri")')


# ----------------------------------------------------------------------
# leapfrog intersection primitive
# ----------------------------------------------------------------------

class TestLeapfrogIntersection:

    def _run(self, key_lists):
        counter = [0]
        out = list(leapfrog_intersection(key_lists, counter))
        return out, counter[0]

    def test_basic_intersection(self):
        out, _ = self._run([[1, 3, 4, 5, 6, 7, 8, 9, 11],
                            [1, 2, 3, 5, 8, 13, 21],
                            [1, 2, 4, 5, 8, 10]])
        assert out == [1, 5, 8]

    def test_single_iterator_streams_all_keys(self):
        out, seeks = self._run([[2, 4, 6]])
        assert out == [2, 4, 6]

    def test_disjoint_lists_yield_nothing(self):
        out, _ = self._run([[1, 2, 3], [4, 5, 6]])
        assert out == []

    def test_empty_list_yields_nothing(self):
        out, seeks = self._run([[], [1, 2]])
        assert out == []
        assert seeks == 0

    def test_identical_lists(self):
        out, _ = self._run([[1, 2, 3], [1, 2, 3]])
        assert out == [1, 2, 3]

    def test_seeks_are_counted(self):
        _, seeks = self._run([[1, 100], [50, 100]])
        assert seeks >= 1

    def test_galloping_skips_wide_gaps(self):
        sparse = [0, 10_000]
        dense = list(range(0, 10_001, 2))
        out, _ = self._run([sparse, dense])
        assert out == [0, 10_000]


# ----------------------------------------------------------------------
# sorted iterator views on the α-memory join index
# ----------------------------------------------------------------------

def _memory_with_index():
    db = Database(network="a-treat", virtual_policy="never")
    db.execute("create t (a = int4, k = int4)")
    db.execute("create u (b = int4, k = int4)")
    db.execute("create log (tag = text)")
    db.execute('define rule rj if t.a = u.b '
               'then append to log(tag = "j")')
    memory = db.network._memories[("rj", "t")]
    memory.ensure_join_index(0)        # position of t.a
    return db, memory


class TestSortedJoinKeys:

    def test_lazy_build_and_incremental_maintenance(self):
        db, memory = _memory_with_index()
        position = memory.join_index_positions()[0]
        for value in (5, 1, 9, 5):
            db.execute(f"append t(a = {value}, k = {value})")
        assert memory.sorted_join_keys(position) == [1, 5, 9]
        assert memory.sorted_view_positions() == [position]
        # new distinct key lands in sorted position
        db.execute("append t(a = 3, k = 30)")
        assert memory.sorted_join_keys(position) == [1, 3, 5, 9]
        # duplicate key: bucket grows, view unchanged
        db.execute("append t(a = 3, k = 31)")
        assert memory.sorted_join_keys(position) == [1, 3, 5, 9]
        # draining one of two bucket entries keeps the key ...
        db.execute("delete t where t.k = 31")
        assert memory.sorted_join_keys(position) == [1, 3, 5, 9]
        # ... draining the bucket removes it
        db.execute("delete t where t.k = 30")
        assert memory.sorted_join_keys(position) == [1, 5, 9]

    def test_null_and_nan_keys_are_excluded(self):
        db = Database(network="a-treat", virtual_policy="never")
        db.execute("create t (a = float8, k = int4)")
        db.execute("create u (b = float8, k = int4)")
        db.execute("create log (tag = text)")
        db.execute('define rule rj if t.a = u.b '
                   'then append to log(tag = "j")')
        memory = db.network._memories[("rj", "t")]
        memory.ensure_join_index(0)
        position = 0
        db.execute("append t(a = 2.0, k = 1)")
        db.execute("append t(a = null, k = 2)")
        db.execute("append t(a = nan, k = 3)")
        db.execute("append t(a = 1.0, k = 4)")
        assert memory.sorted_join_keys(position) == [1.0, 2.0]

    def test_flush_drops_views(self):
        db, memory = _memory_with_index()
        position = memory.join_index_positions()[0]
        db.execute("append t(a = 7, k = 1)")
        assert memory.sorted_join_keys(position) == [7]
        memory.flush()
        assert memory.sorted_view_positions() == []

    def test_view_build_counter(self):
        db, memory = _memory_with_index()
        position = memory.join_index_positions()[0]
        before = db.network.stats.get("alpha.sorted_views_built")
        memory.sorted_join_keys(position)
        memory.sorted_join_keys(position)      # cached: no second build
        assert db.network.stats.get("alpha.sorted_views_built") \
            == before + 1


# ----------------------------------------------------------------------
# join classes and cyclicity
# ----------------------------------------------------------------------

def _compile(db, name, text):
    """Define the rule and return its compiled form."""
    db.execute(text)
    return db.network.rules[name]


def _triangle_db():
    db = Database(network="a-treat", virtual_policy="never")
    db.execute_script("""
        create r (a = int4, b = int4)
        create s (b = int4, c = int4)
        create t (c = int4, a = int4)
        create log (tag = text)
    """)
    return db


class TestJoinGraphAnalysis:

    def test_triangle_classes_and_cycle(self):
        db = _triangle_db()
        rule = _compile(db, "triangle", TRIANGLE)
        classes = build_join_classes(rule)
        # r.a = s.b and t.a = r.a merge into one class; s.c = t.c is
        # the other
        assert len(classes) == 2
        merged = next(cls for cls in classes if "r" in cls.positions)
        assert set(merged.positions) == {"r", "s", "t"}
        assert merged.positions["r"] == (0,)
        other = next(cls for cls in classes
                     if "r" not in cls.positions)
        assert set(other.positions) == {"s", "t"}
        assert equijoin_graph_is_cyclic(rule)

    def test_chain_is_acyclic(self):
        db = Database(network="a-treat", virtual_policy="never")
        db.execute("create t (a = int4, k = int4)")
        db.execute("create u (b = int4, k = int4)")
        db.execute("create v (c = int4, k = int4)")
        db.execute("create log (tag = text)")
        rule = _compile(db, "chain",
                        'define rule chain if t.a = u.b '
                        'and u.b = v.c '
                        'then append to log(tag = "c")')
        assert not equijoin_graph_is_cyclic(rule)
        # parallel conjuncts between one pair are one edge, not a cycle
        rule2 = _compile(db, "par",
                         'define rule par if t.a = u.b '
                         'and t.k = u.k '
                         'then append to log(tag = "p")')
        assert not equijoin_graph_is_cyclic(rule2)


# ----------------------------------------------------------------------
# mode resolution and planner decisions
# ----------------------------------------------------------------------

class TestJoinModeResolution:

    def test_explicit_mode_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOIN_MODE", "pairwise")
        assert resolve_join_mode("multiway") == "multiway"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOIN_MODE", "multiway")
        assert resolve_join_mode(None) == "multiway"
        monkeypatch.delenv("REPRO_JOIN_MODE")
        assert resolve_join_mode(None) == "auto"

    def test_unknown_mode_rejected(self):
        with pytest.raises(RuleError, match="unknown join mode"):
            resolve_join_mode("leapfrog")
        for mode in JOIN_MODES:
            assert resolve_join_mode(mode) == mode

    def test_database_rejects_unknown_mode(self):
        with pytest.raises(RuleError):
            Database(join_mode="bogus")


class TestPlannerDecision:

    def test_auto_plans_triangle_as_multiway(self):
        db = _triangle_db()
        db.execute(TRIANGLE)
        db.execute("append s(b = 1, c = 2)")
        db.execute("append t(c = 2, a = 1)")
        db.execute("append r(a = 1, b = 1)")
        stats = db.network.stats
        assert stats.get("joins.multiway_planned") >= 1
        assert stats.get("joins.multiway_seeks") >= 1
        assert stats.get("joins.leapfrog_seeks") >= 0
        assert sorted(db.relation_rows("log")) == [("tri",)]

    def test_pairwise_mode_never_plans_multiway(self):
        db = Database(network="a-treat", virtual_policy="never",
                      join_mode="pairwise")
        db.execute_script("""
            create r (a = int4, b = int4)
            create s (b = int4, c = int4)
            create t (c = int4, a = int4)
            create log (tag = text)
        """)
        db.execute(TRIANGLE)
        db.execute("append s(b = 1, c = 2)")
        db.execute("append t(c = 2, a = 1)")
        db.execute("append r(a = 1, b = 1)")
        assert db.network.stats.get("joins.multiway_planned") == 0
        assert sorted(db.relation_rows("log")) == [("tri",)]

    def test_uncovered_variable_falls_back_with_counter(self):
        # w reaches no equi-join: candidate (cyclic core) but
        # ineligible, so the planner records a fallback
        db = Database(network="a-treat", virtual_policy="never",
                      join_mode="multiway")
        db.execute_script("""
            create r (a = int4, b = int4)
            create s (b = int4, c = int4)
            create t (c = int4, a = int4)
            create w (x = int4)
            create log (tag = text)
        """)
        db.execute(
            "define rule lop "
            "if r.a = s.b and s.c = t.c and t.a = r.a and w.x > r.a "
            "from r in r, s in s, t in t, w in w "
            'then append to log(tag = "lop")')
        db.execute("append s(b = 1, c = 2)")
        db.execute("append t(c = 2, a = 1)")
        db.execute("append w(x = 9)")
        db.execute("append r(a = 1, b = 1)")
        stats = db.network.stats
        assert stats.get("joins.multiway_fallbacks") >= 1
        assert stats.get("joins.multiway_seeks") == 0
        assert sorted(db.relation_rows("log")) == [("lop",)]

    def test_two_variable_rules_stay_pairwise(self):
        db = Database(network="a-treat", virtual_policy="never",
                      join_mode="multiway")
        db.execute("create t (a = int4, k = int4)")
        db.execute("create u (b = int4, k = int4)")
        db.execute("create log (tag = text)")
        db.execute('define rule rj if t.a = u.b '
                   'then append to log(tag = "j")')
        db.execute("append t(a = 1, k = 1)")
        db.execute("append u(b = 1, k = 1)")
        assert db.network.stats.get("joins.multiway_planned") == 0
        assert sorted(db.relation_rows("log")) == [("j",)]


# ----------------------------------------------------------------------
# introspection
# ----------------------------------------------------------------------

class TestDescribeMultiway:

    def test_plan_text_shows_trie_and_sources(self):
        db = Database(network="a-treat", virtual_policy="never",
                      join_mode="multiway")
        db.execute_script("""
            create r (a = int4, b = int4)
            create s (b = int4, c = int4)
            create t (c = int4, a = int4)
            create log (tag = text)
        """)
        db.execute(TRIANGLE)
        text = describe_join_plan(db.manager, "triangle")
        assert "multiway" in text
        assert "cyclic equi-join graph" in text
        # seeding from r leaves the s.c = t.c class as a leapfrog
        # level with two participants; s and t seed-fix both classes
        assert "leapfrog[" in text
        assert "emit" in text
        assert "mode=multiway" in text

    def test_pairwise_rule_reports_shape_only(self):
        db = Database(network="a-treat", virtual_policy="never")
        db.execute("create t (a = int4, k = int4)")
        db.execute("create u (b = int4, k = int4)")
        db.execute("create log (tag = text)")
        db.execute('define rule rj if t.a = u.b '
                   'then append to log(tag = "j")')
        text = describe_join_plan(db.manager, "rj")
        assert "leapfrog[" not in text


# ----------------------------------------------------------------------
# end-to-end equivalence, deletes included
# ----------------------------------------------------------------------

def _pnode_values(db, name):
    return sorted(
        tuple(sorted((var, entry.values) for var, entry in m.bindings))
        for m in db.network.pnode(name).matches())


def _triangle_pair(network, policy):
    out = []
    for mode in ("pairwise", "multiway"):
        db = Database(network=network, virtual_policy=policy,
                      join_mode=mode)
        db.execute_script("""
            create r (a = int4, b = int4)
            create s (b = int4, c = int4)
            create t (c = int4, a = int4)
            create log (tag = text)
        """)
        db._rules_suspended = True     # keep matches in the P-node
        db.execute(TRIANGLE)
        out.append(db)
    return out


@pytest.mark.parametrize("network,policy", [
    ("a-treat", "never"), ("a-treat", "always"),
    ("rete", "never"), ("rete", "always"),
])
class TestMultiwayEquivalence:

    def _load(self, db):
        for b in range(3):
            for c in range(4):
                db.execute(f"append s(b = {b}, c = {c})")
        for c in range(4):
            for a in range(3):
                db.execute(f"append t(c = {c}, a = {a})")
        for i in range(6):
            db.execute(f"append r(a = {i % 3}, b = {i % 3})")

    def test_insert_equivalence(self, network, policy):
        pairwise, multiway = _triangle_pair(network, policy)
        self._load(pairwise)
        self._load(multiway)
        assert _pnode_values(multiway, "triangle") \
            == _pnode_values(pairwise, "triangle")
        assert _pnode_values(multiway, "triangle")

    def test_delete_equivalence(self, network, policy):
        pairwise, multiway = _triangle_pair(network, policy)
        for db in (pairwise, multiway):
            self._load(db)
            db.execute("delete r where r.a = 1")
            db.execute("delete s where s.c = 2")
        assert _pnode_values(multiway, "triangle") \
            == _pnode_values(pairwise, "triangle")
        # re-inserts after deletes keep working (Rete: β-less rebuild)
        for db in (pairwise, multiway):
            db.execute("append r(a = 1, b = 1)")
        assert _pnode_values(multiway, "triangle") \
            == _pnode_values(pairwise, "triangle")
        assert _pnode_values(multiway, "triangle")

    def test_nan_never_joins(self, network, policy):
        for mode in ("pairwise", "multiway"):
            db = Database(network=network, virtual_policy=policy,
                          join_mode=mode)
            db.execute_script("""
                create r (a = float8, b = float8)
                create s (b = float8, c = float8)
                create t (c = float8, a = float8)
                create log (tag = text)
            """)
            db._rules_suspended = True
            db.execute(
                "define rule ftri "
                "if r.a = s.b and s.c = t.c and t.a = r.a "
                "from r in r, s in s, t in t "
                'then append to log(tag = "f")')
            db.execute("append s(b = 1.0, c = 2.0)")
            db.execute("append t(c = 2.0, a = 1.0)")
            db.execute("append r(a = nan, b = nan)")
            db.execute("append r(a = null, b = 1.0)")
            assert _pnode_values(db, "ftri") == []
            db.execute("append r(a = 1.0, b = 1.0)")
            assert len(_pnode_values(db, "ftri")) == 1


def test_self_join_multiplicity_multiway():
    """A token joining to itself does so exactly the right number of
    times (the paper's ProcessedMemories invariant) under multiway."""
    results = {}
    for mode in ("pairwise", "multiway"):
        for policy in ("never", "always"):
            db = Database(network="a-treat", virtual_policy=policy,
                          join_mode=mode)
            db.execute("create t (a = int4, k = int4)")
            db.execute("create log (tag = text)")
            db._rules_suspended = True
            db.execute(
                "define rule cyc "
                "if x.a = y.a and y.k = z.k and z.a = x.a "
                "from x in t, y in t, z in t "
                'then append to log(tag = "cyc")')
            for i in range(4):
                db.execute(f"append t(a = {i % 2}, k = {i})")
            results[(mode, policy)] = _pnode_values(db, "cyc")
    reference = results[("pairwise", "never")]
    assert reference
    for key, value in results.items():
        assert value == reference, f"{key} diverged"


def test_multiway_composes_with_parallel_workers():
    reference = None
    for workers in (0, 2):
        db = Database(network="a-treat", virtual_policy="never",
                      join_mode="multiway")
        db.set_parallel_workers(workers, min_batch=1)
        db.execute_script("""
            create r (a = int4, b = int4)
            create s (b = int4, c = int4)
            create t (c = int4, a = int4)
            create log (tag = text)
        """)
        db._rules_suspended = True
        db.execute(TRIANGLE)
        db.bulk_append("s", [(b, c) for b in range(3)
                             for c in range(3)])
        db.bulk_append("t", [(c, a) for c in range(3)
                             for a in range(3)])
        db.bulk_append("r", [(i % 3, i % 3) for i in range(8)])
        snapshot = _pnode_values(db, "triangle")
        if reference is None:
            reference = snapshot
        else:
            assert snapshot == reference
    assert reference
