"""Concurrent-vs-serial equivalence: the serving layer's core claim.

N concurrent sessions driving one service must leave the engine in a
state *identical* to replaying the service's committed write order
(:attr:`RuleService.serial_log`) serially on a fresh database — same
P-node contents, same α-memories, same firing order, same relation
contents, and byte-identical WAL.  The write queue makes this hold by
construction; these tests are what catches any mutation that sneaks
around the queue (or a reader that observes — and then acts on — a
half-applied transition).
"""

import pathlib
import tempfile
import threading

from hypothesis import given, settings, strategies as st

from repro import Database
from repro.serve import RuleService, ServiceClient, RuleServer
from repro.serve.service import replay_serial

from tests.test_network_equivalence import RULES, pnode_snapshot

#: a representative rule subset: selection, join, event, transition
RULE_SET = [RULES[0], RULES[1], RULES[4], RULES[5]]

CLIENT_COUNTS = (1, 2, 4)


def _build_db(durable_path) -> Database:
    db = Database(durable_path=durable_path, fsync="never",
                  batch_tokens=True)
    db.execute("create t (a = int4, k = int4)")
    db.execute("create u (b = int4, k = int4)")
    db.execute("create log (tag = text)")
    for rule in RULE_SET:
        db.execute(rule)
    return db


def _commands(client: int, ops) -> list[str]:
    """Translate abstract ops into command texts whose keys are scoped
    to one client (the *interleaving* across clients is the variable
    under test, not the commands themselves)."""
    base = (client + 1) * 1000
    texts = []
    for j, op in enumerate(ops):
        key = base + j
        if op[0] == "append":
            _, rel, value = op
            col = {"t": "a", "u": "b"}[rel]
            texts.append(f"append {rel}({col} = {value}, k = {key})")
        elif op[0] == "modify":
            _, rel, back, value = op
            col = {"t": "a", "u": "b"}[rel]
            texts.append(f"replace {rel} ({col} = {value}) "
                         f"where {rel}.k = {base + (j - back % 8)}")
        else:
            _, rel, back = op
            texts.append(f"delete {rel} "
                         f"where {rel}.k = {base + (j - back % 8)}")
    return texts


def _snapshot(db: Database) -> dict:
    return {
        "pnodes": pnode_snapshot(db),
        "firings": [(record.rule_name, record.match_count)
                    for record in db.firing_log],
        "relations": {rel: sorted(db.relation_rows(rel))
                      for rel in ("t", "u", "log")},
    }


def _run_concurrently(service: RuleService,
                      per_client: list[list[str]],
                      txn_client: int | None = None) -> list[str]:
    """Each client list on its own thread; returns worker errors."""
    errors: list[str] = []

    def worker(client: int, texts: list[str]) -> None:
        session = service.open_session()
        try:
            for i, text in enumerate(texts):
                if client == txn_client and i == 0 and len(texts) > 1:
                    session.begin()
                session.execute(text)
                if client == txn_client and i == 1:
                    session.commit()
                if i % 3 == 0:
                    session.query(
                        "retrieve (x.a) from x in t where x.a > 5")
        except Exception as exc:   # pragma: no cover - the regression
            errors.append(f"client {client}: "
                          f"{type(exc).__name__}: {exc}")
        finally:
            service.close_session(session)

    threads = [threading.Thread(target=worker, args=(i, texts),
                                daemon=True)
               for i, texts in enumerate(per_client)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    return errors


def _assert_equivalent(root: pathlib.Path, label: str,
                       per_client: list[list[str]],
                       txn_client: int | None = None,
                       service_factory=None) -> None:
    live_dir = root / f"live-{label}"
    service = RuleService(db=_build_db(live_dir))
    try:
        if service_factory is None:
            errors = _run_concurrently(service, per_client,
                                       txn_client=txn_client)
        else:
            errors = service_factory(service, per_client)
        assert errors == [], label
        history = service.serial_history()
    finally:
        service.shutdown(close_db=True)
    live = _snapshot(service.db)
    live_wal = (live_dir / "wal.log").read_bytes()

    replay_dir = root / f"replay-{label}"
    replayed = _build_db(replay_dir)
    replay_serial(replayed, history)
    replayed.close()
    assert _snapshot(replayed) == live, label
    assert (replay_dir / "wal.log").read_bytes() == live_wal, label


# ----------------------------------------------------------------------
# deterministic stress: 1, 2 and 4 concurrent clients
# ----------------------------------------------------------------------

def test_concurrent_sessions_equivalent_to_serial_replay():
    workload = [
        ("append", "t", 7), ("append", "u", 7), ("append", "t", 3),
        ("modify", "t", 2, 9), ("append", "u", 9), ("delete", "u", 3),
        ("append", "t", 6), ("modify", "t", 1, 2), ("append", "u", 6),
        ("delete", "t", 5), ("append", "t", 8), ("modify", "u", 4, 7),
    ]
    with tempfile.TemporaryDirectory() as root:
        root = pathlib.Path(root)
        for clients in CLIENT_COUNTS:
            per_client = [_commands(i, workload)
                          for i in range(clients)]
            _assert_equivalent(root, f"c{clients}", per_client,
                               txn_client=0 if clients > 1 else None)


def test_socket_clients_equivalent_to_serial_replay():
    """The same property through the full TCP stack."""
    workload = [
        ("append", "t", 7), ("append", "u", 7), ("modify", "t", 1, 9),
        ("append", "t", 4), ("delete", "u", 2), ("append", "u", 8),
    ]

    def over_sockets(service, per_client):
        server = RuleServer(service)
        host, port = server.start()
        errors: list[str] = []

        def worker(client: int, texts: list[str]) -> None:
            try:
                with ServiceClient(host, port) as remote:
                    for i, text in enumerate(texts):
                        remote.execute(text)
                        if i % 2 == 0:
                            remote.rows("retrieve (x.a) from x in t "
                                        "where x.a > 5")
            except Exception as exc:
                errors.append(f"client {client}: "
                              f"{type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=worker, args=(i, texts),
                                    daemon=True)
                   for i, texts in enumerate(per_client)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        server.stop(shutdown_service=False)
        return errors

    with tempfile.TemporaryDirectory() as root:
        root = pathlib.Path(root)
        per_client = [_commands(i, workload) for i in range(3)]
        _assert_equivalent(root, "sock", per_client,
                           service_factory=over_sockets)


# ----------------------------------------------------------------------
# hypothesis: random per-client workloads
# ----------------------------------------------------------------------

_op = st.one_of(
    st.tuples(st.just("append"), st.sampled_from("tu"),
              st.integers(0, 10)),
    st.tuples(st.just("modify"), st.sampled_from("tu"),
              st.integers(0, 8), st.integers(0, 10)),
    st.tuples(st.just("delete"), st.sampled_from("tu"),
              st.integers(0, 8)),
)


@settings(max_examples=8, deadline=None)
@given(st.lists(st.lists(_op, min_size=1, max_size=6),
                min_size=2, max_size=3))
def test_random_concurrent_workloads_equivalent(per_client_ops):
    with tempfile.TemporaryDirectory() as root:
        root = pathlib.Path(root)
        per_client = [_commands(i, ops)
                      for i, ops in enumerate(per_client_ops)]
        _assert_equivalent(root, "hyp", per_client,
                           txn_client=0 if len(per_client) > 1
                           else None)
