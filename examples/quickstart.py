#!/usr/bin/env python3
"""Quickstart: an active database in ten minutes.

Walks through the core Ariel workflow with the paper's running example:
create relations, load data, query them, define rules with pattern /
event / transition conditions, and watch the rules react to updates.

Run with:  python examples/quickstart.py
"""

from repro import Database


def main() -> None:
    db = Database()          # the default A-TREAT network

    # ------------------------------------------------------------------
    # 1. Schema and data (the paper's emp / dept / job relations)
    # ------------------------------------------------------------------
    db.execute_script("""
        create emp (name = text, age = int4, sal = float8,
                    dno = int4, jno = int4)
        create dept (dno = int4, name = text, building = text)
        create job (jno = int4, title = text, paygrade = int4)

        append dept(dno=1, name="Toy", building="A")
        append dept(dno=2, name="Sales", building="B")
        append job(jno=1, title="Clerk", paygrade=3)
        append job(jno=2, title="Engineer", paygrade=6)

        append emp(name="Ann", age=34, sal=52000, dno=2, jno=2)
        append emp(name="Carl", age=28, sal=31000, dno=1, jno=1)
    """)

    # ------------------------------------------------------------------
    # 2. Plain queries go through the usual optimizer/executor
    # ------------------------------------------------------------------
    result = db.query(
        'retrieve (emp.name, dept.name) where emp.dno = dept.dno')
    print("== employees and their departments ==")
    print(result)
    print()
    print("== the plan the optimizer chose ==")
    print(db.explain(
        'retrieve (emp.name) where emp.dno = dept.dno '
        'and dept.name = "Sales"'))
    print()

    # ------------------------------------------------------------------
    # 3. An event-based rule: nobody named Bob may be appended
    #    (the paper's NoBobs, section 2.2.2)
    # ------------------------------------------------------------------
    db.execute('define rule NoBobs on append emp '
               'if emp.name = "Bob" then delete emp')
    db.execute('append emp(name="Bob", age=44, sal=60000, dno=2, jno=2)')
    print("== after trying to append Bob ==")
    print(db.query("retrieve (emp.name)"))
    print()

    # Logical events: appending X and renaming to Bob inside one
    # do...end block is a single logical append of a Bob — NoBobs fires.
    db.execute('do '
               'append emp(name="X", age=27, sal=55000, dno=2, jno=1) '
               'replace emp (name="Bob") where emp.name = "X" '
               'end')
    print("== after the sneaky do...end block ==")
    print(db.query("retrieve (emp.name)"))
    print()

    # ------------------------------------------------------------------
    # 4. A transition rule: flag raises above 10%
    #    (the paper's raiselimit, section 2.3)
    # ------------------------------------------------------------------
    db.execute("create salaryerror (name = text, oldsal = float8, "
               "newsal = float8)")
    db.execute("define rule raiselimit "
               "if emp.sal > 1.1 * previous emp.sal "
               "then append to salaryerror(emp.name, previous emp.sal, "
               "emp.sal)")
    db.execute('replace emp (sal = 65000) where emp.name = "Ann"')  # +25%
    db.execute('replace emp (sal = 32000) where emp.name = "Carl"')  # +3%
    print("== salaryerror after the raises ==")
    print(db.query("retrieve (salaryerror.name, salaryerror.oldsal, "
                   "salaryerror.newsal)"))
    print()

    # ------------------------------------------------------------------
    # 5. Rules compose: react to the error log itself
    # ------------------------------------------------------------------
    db.execute("create alerts (message = text)")
    db.execute("define rule escalate on append salaryerror "
               "then append to alerts(message = salaryerror.name)")
    db.execute('replace emp (sal = 90000) where emp.name = "Ann"')  # +38%
    print("== alerts (a rule triggered by a rule) ==")
    print(db.query("retrieve (alerts.message)"))
    print()

    # ------------------------------------------------------------------
    # 6. Peek inside the discrimination network
    # ------------------------------------------------------------------
    print("== network diagnostics ==")
    print(f"network: {db.network.network_name}")
    print(f"tokens processed: {db.network.tokens_processed}")
    print(f"rule firings: {db.firings}")
    for name in ("NoBobs", "raiselimit"):
        memory = db.network.memory(name, "emp")
        print(f"rule {name}: emp memory kind = {memory.kind_name}")


if __name__ == "__main__":
    main()
