#!/usr/bin/env python3
"""Logical vs physical events: a tour of the paper's §2.2.2 semantics.

Shows, for each of the four per-tuple life cycles (paper §4.3.1), which
event rules fire — demonstrating that Ariel triggers on the *net effect*
of a do…end block, not on the physical command sequence.

Run with:  python examples/logical_events.py
"""

from repro import Database


def fresh_db() -> Database:
    db = Database()
    db.execute_script("""
        create emp (name = text, sal = float8)
        create trace (event = text, who = text)
        define rule on_append on append emp
            then append to trace(event = "append", who = emp.name)
        define rule on_replace on replace emp
            then append to trace(event = "replace", who = emp.name)
        define rule on_delete on delete emp
            then append to trace(event = "delete", who = emp.name)
    """)
    return db


def show(title: str, db: Database) -> None:
    print(f"== {title} ==")
    rows = db.relation_rows("trace")
    if rows:
        for event, who in rows:
            print(f"   {event:8s} {who}")
    else:
        print("   (no events)")
    print()


def main() -> None:
    # Case 1 (im*): insert + modifications = one logical append of the
    # final value.
    db = fresh_db()
    db.execute('do '
               'append emp(name="draft", sal=100) '
               'replace emp (name="final") where emp.name = "draft" '
               'replace emp (sal=200) where emp.name = "final" '
               'end')
    show("case 1: insert+modify+modify in one block -> append of 'final'",
         db)

    # Case 2 (im*d): insert then delete = nothing happened.
    db = fresh_db()
    db.execute('do '
               'append emp(name="ghost", sal=1) '
               'replace emp (sal=2) where emp.name = "ghost" '
               'delete emp where emp.name = "ghost" '
               'end')
    show("case 2: insert+modify+delete in one block -> no events", db)

    # Case 3 (m+): modifications of an existing tuple = one logical
    # replace with the net attribute list.
    db = fresh_db()
    db.execute('append emp(name="worker", sal=100)')
    db.execute("delete trace")      # drop the append event
    db.execute('do '
               'replace emp (sal=120) where emp.name = "worker" '
               'replace emp (sal=140) where emp.name = "worker" '
               'end')
    show("case 3: two modifies in one block -> one replace event", db)

    # Case 4 (m*d): modify then delete = one logical delete.
    db = fresh_db()
    db.execute('append emp(name="leaver", sal=100)')
    db.execute("delete trace")
    db.execute('do '
               'replace emp (sal=999) where emp.name = "leaver" '
               'delete emp where emp.name = "leaver" '
               'end')
    show("case 4: modify+delete in one block -> one delete event", db)

    # Contrast: the same commands as separate transitions are separate
    # physical events — each one is its own logical event.
    db = fresh_db()
    db.execute('append emp(name="loud", sal=1)')
    db.execute('replace emp (sal=2) where emp.name = "loud"')
    db.execute('delete emp where emp.name = "loud"')
    show("contrast: the same operations as three transitions", db)

    # The replace target-list gate: on replace emp(sal) vs (name).
    db = Database()
    db.execute_script("""
        create emp (name = text, sal = float8)
        create trace (event = text, who = text)
        define rule sal_watch on replace emp(sal)
            then append to trace(event = "sal-changed", who = emp.name)
    """)
    db.execute('append emp(name="ann", sal=100)')
    db.execute('replace emp (name="Ann") where emp.name = "ann"')
    db.execute('replace emp (sal=200) where emp.name = "Ann"')
    # net-effect subtlety: raise then undo within one block = no event
    db.execute('do '
               'replace emp (sal=300) where emp.name = "Ann" '
               'replace emp (sal=200) where emp.name = "Ann" '
               'end')
    show("replace(sal) gate: rename ignored, raise seen, "
         "raise+undo ignored", db)


if __name__ == "__main__":
    main()
