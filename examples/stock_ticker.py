#!/usr/bin/env python3
"""Stock ticker with asynchronous alert delivery.

The paper's conclusion motivates "applications that can receive data from
database triggers asynchronously (e.g., safety and integrity alert
monitors, stock tickers)".  This example implements exactly that: price
updates stream into a relation; transition rules detect spikes, crashes
and all-time highs; and a monitoring application receives the alerts
through the subscription API — after each rule cascade settles, never
interleaved with it.

Run with:  python examples/stock_ticker.py
"""

from repro import Database


def main() -> None:
    db = Database()
    db.execute_script("""
        create quote (symbol = text, price = float8, high = float8)
        create spike_log (symbol = text, oldprice = float8,
                          newprice = float8)
    """)

    # Rules: a >15% jump is a spike; a >15% drop is a crash (both
    # transition conditions); new all-time highs update the high-water
    # mark, which composes with the spike rule through the same update.
    db.execute("""
        define rule spike priority 5
        if quote.price > 1.15 * previous quote.price
        then append to spike_log(quote.symbol, previous quote.price,
                                 quote.price)
    """)
    db.execute("""
        define rule crash priority 5
        if quote.price < 0.85 * previous quote.price
        then append to spike_log(quote.symbol, previous quote.price,
                                 quote.price)
    """)
    db.execute("""
        define rule highwater priority 9
        if quote.price > quote.high
        then replace quote (high = quote.price)
    """)

    # The monitoring application: plain Python callbacks.
    def on_spike(notification):
        for match in notification.matches:
            symbol, price, high = match["quote"]
            old = match.previous["quote"][1]
            direction = "▲ spike" if price > old else "▼ crash"
            print(f"  [alert #{notification.sequence}] {direction} "
                  f"{symbol}: {old:.2f} -> {price:.2f} "
                  f"(all-time high {high:.2f})")

    db.subscribe(on_spike, "spike")
    db.subscribe(on_spike, "crash")

    ticks = [
        ("ACME", 100.0), ("BETA", 50.0),          # initial listings
        ("ACME", 104.0),                           # drift: no alert
        ("ACME", 130.0),                           # spike
        ("BETA", 40.0),                            # crash
        ("ACME", 128.0),                           # drift
        ("BETA", 55.0),                            # spike (from 40)
        ("ACME", 90.0),                            # crash
    ]

    print("== streaming ticks ==")
    listed = set()
    for symbol, price in ticks:
        print(f"tick {symbol} @ {price:.2f}")
        if symbol not in listed:
            listed.add(symbol)
            db.execute(f'append quote(symbol="{symbol}", price={price}, '
                       f'high={price})')
        else:
            db.execute(f'replace quote (price = {price}) '
                       f'where quote.symbol = "{symbol}"')

    print()
    print("== final quotes (with high-water marks) ==")
    print(db.query("retrieve (quote.symbol, quote.price, quote.high) "
                   "sort by quote.symbol"))
    print()
    print("== spike_log relation (the durable record) ==")
    print(db.query("retrieve (spike_log.symbol, spike_log.oldprice, "
                   "spike_log.newprice)"))
    print()
    print("== per-symbol alert statistics (aggregates) ==")
    print(db.query("retrieve (spike_log.symbol, n = count(spike_log.all),"
                   " biggest = max(spike_log.newprice))"))


if __name__ == "__main__":
    main()
