#!/usr/bin/env python3
"""Inventory integrity monitor: the "safety and integrity alert" style
application the paper's conclusion motivates.

A warehouse tracks stock levels, orders and suppliers.  Active rules
implement the business policy without any application polling:

* reorder     — when stock falls below a product's reorder point, place
                a purchase order with the cheapest supplier (a rule whose
                action joins the P-node against two other relations);
* no_oversell — orders larger than current stock are cut down to what is
                available and the shortfall is logged;
* audit_spike — transition rule: any single-transition stock change of
                more than 500 units is recorded for audit;
* obsolete    — on delete of a product, cancel its open purchase orders
                (an on-delete rule binding the deleted tuple).

Run with:  python examples/inventory_monitor.py
"""

from repro import Database


def build_schema(db: Database) -> None:
    db.execute_script("""
        create product (pno = int4, name = text, stock = int4,
                        reorder_point = int4)
        create supplier (sno = int4, pno = int4, name = text,
                         price = float8)
        create purchase (pno = int4, supplier = text, quantity = int4)
        create shortfall (pno = int4, requested = int4, shipped = int4)
        create audit (pno = int4, before = int4, after = int4)
        create cancelled (pno = int4, supplier = text)
        create orders (ono = int4, pno = int4, quantity = int4)
    """)


def define_rules(db: Database) -> None:
    # Reorder from the cheapest supplier when stock dips below the
    # reorder point.  The supplier choice is expressed by a "no cheaper
    # supplier exists" style join in the action's where clause.
    db.execute("""
        define rule reorder priority 5
        if product.stock < product.reorder_point
           and product.stock >= 0
        then append to purchase(pno = product.pno,
                                supplier = supplier.name,
                                quantity = product.reorder_point * 2)
             where supplier.pno = product.pno
    """)

    # Orders beyond available stock: ship what we can, log the rest.
    db.execute("""
        define rule no_oversell priority 9
        if orders.pno = product.pno and orders.quantity > product.stock
        then do
            append to shortfall(pno = product.pno,
                                requested = orders.quantity,
                                shipped = product.stock)
            replace orders (quantity = product.stock)
        end
    """)

    # Audit any huge single-transition swing in stock.
    db.execute("""
        define rule audit_spike priority 8
        if product.stock > previous product.stock + 500
           or previous product.stock > product.stock + 500
        then append to audit(pno = product.pno,
                             before = previous product.stock,
                             after = product.stock)
    """)

    # When a product is discontinued, cancel open purchase orders.
    db.execute("""
        define rule obsolete on delete product
        then do
            append to cancelled(pno = purchase.pno,
                                supplier = purchase.supplier)
                where purchase.pno = product.pno
            delete purchase where purchase.pno = product.pno
        end
    """)


def main() -> None:
    db = Database()
    build_schema(db)
    define_rules(db)

    db.execute_script("""
        append product(pno=1, name="widget", stock=100, reorder_point=40)
        append product(pno=2, name="gadget", stock=900, reorder_point=50)
        append supplier(sno=1, pno=1, name="Acme", price=2.5)
        append supplier(sno=2, pno=2, name="Bolt", price=4.0)
    """)

    # A sale drives widgets below the reorder point.
    db.execute("replace product (stock = 30) where product.pno = 1")
    print("== purchase orders after widgets dip to 30 ==")
    print(db.query("retrieve (purchase.pno, purchase.supplier, "
                   "purchase.quantity)"))
    print()

    # An order for more gadgets than we have.
    db.execute("append orders(ono=1, pno=2, quantity=2000)")
    print("== orders and shortfall after an oversized order ==")
    print(db.query("retrieve (orders.ono, orders.quantity)"))
    print(db.query("retrieve (shortfall.pno, shortfall.requested, "
                   "shortfall.shipped)"))
    print()

    # A bulk delivery swings stock by more than 500 in one transition.
    db.execute("replace product (stock = product.stock + 800) "
               "where product.pno = 2")
    print("== audit log after the bulk delivery ==")
    print(db.query("retrieve (audit.pno, audit.before, audit.after)"))
    print()

    # Discontinue widgets: the open purchase order is cancelled.
    db.execute("delete product where product.pno = 1")
    print("== cancelled purchases after discontinuing widgets ==")
    print(db.query("retrieve (cancelled.pno, cancelled.supplier)"))
    print(db.query("retrieve (purchase.pno, purchase.supplier)"))
    print()

    print(f"rule firings: {db.firings}")


if __name__ == "__main__":
    main()
