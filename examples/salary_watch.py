#!/usr/bin/env python3
"""Salary policy enforcement: the paper's SalesClerkRule2 scenario.

Demonstrates set-oriented rule actions with query modification: the rule
condition joins three relations (emp ⋈ job with a selection), and the
compound action appends matching employees to a watch relation and caps
their salaries with two ``replace'`` commands that join the P-node
against ``dept`` — the exact example of paper Figures 6–8.  Also shows
the modified action text the rule catalog stores (Figure 7) and the
execution plan chosen for the action (Figure 8).

Run with:  python examples/salary_watch.py
"""

from repro import Database
from repro.core.action_planner import modified_action_text


def main() -> None:
    db = Database()
    db.execute_script("""
        create emp (name = text, age = int4, sal = float8,
                    dno = int4, jno = int4)
        create dept (dno = int4, name = text, building = text)
        create job (jno = int4, title = text, paygrade = int4)
        create salarywatch (name = text, age = int4, sal = float8,
                            dno = int4, jno = int4)

        append dept(dno=1, name="Toy", building="A")
        append dept(dno=2, name="Sales", building="B")
        append dept(dno=3, name="Research", building="C")
        append job(jno=1, title="Clerk", paygrade=3)
        append job(jno=2, title="Engineer", paygrade=6)
    """)

    # A population of clerks and engineers across departments.
    people = [
        ("Alice", 31, 45000, 2, 1),    # Sales clerk, overpaid
        ("Ben", 25, 28000, 2, 1),      # Sales clerk, fine
        ("Cora", 40, 52000, 1, 1),     # Toy clerk, overpaid
        ("Dan", 38, 90000, 2, 2),      # Sales engineer: not a clerk
        ("Eve", 29, 41000, 3, 1),      # Research clerk, overpaid
    ]
    for name, age, sal, dno, jno in people:
        db.execute(f'append emp(name="{name}", age={age}, sal={sal}, '
                   f'dno={dno}, jno={jno})')

    # The rule from the paper's Figure 6: clerks earning over 30000 are
    # put on a watch list; Sales clerks are capped at 30000, everyone
    # else at 25000.
    db.execute('define rule SalesClerkRule2 '
               'if emp.sal > 30000 and emp.jno = job.jno '
               'and job.title = "Clerk" '
               'then do '
               'append to salarywatch(emp.all) '
               'replace emp (sal = 30000) where emp.dno = dept.dno '
               'and dept.name = "Sales" '
               'replace emp (sal = 25000) where emp.dno = dept.dno '
               'and dept.name != "Sales" '
               'end')

    rule = db.manager.rule("SalesClerkRule2").compiled
    print("== the action after query modification (paper Figure 7) ==")
    print(modified_action_text(rule))
    print()

    print("== watch list (populated by the activation firing) ==")
    print(db.query("retrieve (salarywatch.name, salarywatch.sal)"))
    print()
    print("== salaries after the caps ==")
    print(db.query("retrieve (emp.name, emp.sal, emp.dno)"))
    print()

    # New hires keep triggering the rule incrementally.
    db.execute('append emp(name="Fay", age=33, sal=48000, dno=2, jno=1)')
    print("== after hiring Fay (Sales clerk at 48000) ==")
    print(db.query('retrieve (emp.sal) where emp.name = "Fay"'))
    print(db.query('retrieve (salarywatch.name)'))
    print()

    # Raising a clerk above the limit re-triggers the cap.
    db.execute('replace emp (sal = 35000) where emp.name = "Ben"')
    print("== after giving Ben a raise to 35000 ==")
    print(db.query('retrieve (emp.name, emp.sal) '
                   'where emp.name = "Ben"'))
    print()

    print(f"rule firings: {db.firings}")
    print(f"tokens processed: {db.network.tokens_processed}")


if __name__ == "__main__":
    main()
